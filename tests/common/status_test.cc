#include "src/common/status.h"

#include <gtest/gtest.h>

namespace yask {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotFound("missing hotel").message(), "missing hotel");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("object 7").ToString(), "NOT_FOUND: object 7");
  EXPECT_EQ(Status(StatusCode::kInternal, "").ToString(), "INTERNAL");
}

TEST(StatusCodeToStringTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, ImplicitConversionFromValueAndStatus) {
  auto make = [](bool good) -> Result<double> {
    if (good) return 1.5;
    return Status::Internal("bad");
  };
  EXPECT_TRUE(make(true).ok());
  EXPECT_FALSE(make(false).ok());
}

}  // namespace
}  // namespace yask
