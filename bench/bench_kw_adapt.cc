// Experiments E8, E9 (runtime legs), E10 (DESIGN.md): the keyword-adapted
// why-not module.
//
// Regenerates the ICDE'16-style sweeps behind §3.3's keyword-adaption module:
// the KcR-tree bound-and-prune algorithm versus the basic baseline (exact
// rank by full scan per candidate), swept over k (E8), |q.doc| and |M| (E9),
// and dataset size N; pruning-effectiveness counters cover E10.
//
// Expected shape (paper): bound-and-prune beats basic by a widening margin as
// N and the candidate space (|q.doc| + |M.doc|) grow; most candidates die on
// bounds without exact rank computation.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/whynot/keyword_adaption.h"

namespace yask {
namespace bench {
namespace {

void RunAdapt(benchmark::State& state, KwAdaptMode mode) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  const size_t m_count = static_cast<size_t>(state.range(2));
  const size_t query_keywords = static_cast<size_t>(state.range(3));
  const ObjectStore& store = SharedDataset(n);
  const KcRTree& tree = SharedKcR(n);

  Rng rng(11);
  std::vector<std::pair<Query, std::vector<ObjectId>>> workload;
  while (workload.size() < 8) {
    Query q = MakeQuery(store, &rng, query_keywords, k);
    std::vector<ObjectId> missing = PickMissing(store, q, m_count);
    if (missing.size() == m_count) {
      workload.emplace_back(std::move(q), std::move(missing));
    }
  }

  KeywordAdaptOptions options;
  options.lambda = 0.5;
  options.mode = mode;

  size_t i = 0;
  double penalty_sum = 0.0;
  size_t generated = 0;
  size_t pruned = 0;
  size_t resolved = 0;
  size_t runs = 0;
  for (auto _ : state) {
    const auto& [q, missing] = workload[i++ % workload.size()];
    auto result = AdaptKeywords(store, tree, q, missing, options);
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      penalty_sum += result->penalty.value;
      generated += result->stats.candidates_generated;
      pruned += result->stats.candidates_pruned_bounds +
                result->stats.candidates_pruned_floor;
      resolved += result->stats.candidates_resolved;
      ++runs;
    }
  }
  if (runs > 0) {
    state.counters["avg_penalty"] = benchmark::Counter(penalty_sum / runs);
    state.counters["candidates/query"] =
        benchmark::Counter(static_cast<double>(generated) / runs);
    state.counters["pruned_pct"] = benchmark::Counter(
        generated == 0 ? 0.0 : 100.0 * static_cast<double>(pruned) / generated);
    state.counters["resolved/query"] =
        benchmark::Counter(static_cast<double>(resolved) / runs);
  }
}

void BM_KwAdapt_BoundAndPrune(benchmark::State& state) {
  RunAdapt(state, KwAdaptMode::kBoundAndPrune);
}
void BM_KwAdapt_Basic(benchmark::State& state) {
  RunAdapt(state, KwAdaptMode::kBasic);
}

// E8: vary k at N = 100k (bound-and-prune) / 20k (basic).
BENCHMARK(BM_KwAdapt_BoundAndPrune)
    ->ArgNames({"N", "k", "M", "qkw"})
    ->Args({100000, 1, 1, 3})
    ->Args({100000, 5, 1, 3})
    ->Args({100000, 10, 1, 3})
    ->Args({100000, 20, 1, 3});
BENCHMARK(BM_KwAdapt_Basic)
    ->ArgNames({"N", "k", "M", "qkw"})
    ->Args({20000, 1, 1, 3})
    ->Args({20000, 10, 1, 3});

// E9 (runtime legs): vary |q.doc| and |M| at N = 100k, k = 10.
BENCHMARK(BM_KwAdapt_BoundAndPrune)
    ->ArgNames({"N", "k", "M", "qkw"})
    ->Args({100000, 10, 1, 1})
    ->Args({100000, 10, 1, 2})
    ->Args({100000, 10, 1, 4})
    ->Args({100000, 10, 1, 5})
    ->Args({100000, 10, 2, 3})
    ->Args({100000, 10, 3, 3});

// E10: scalability in N (pruning counters tell the effectiveness story).
BENCHMARK(BM_KwAdapt_BoundAndPrune)
    ->ArgNames({"N", "k", "M", "qkw"})
    ->Args({10000, 10, 1, 3})
    ->Args({20000, 10, 1, 3})
    ->Args({50000, 10, 1, 3})
    ->Args({200000, 10, 1, 3});
BENCHMARK(BM_KwAdapt_Basic)
    ->ArgNames({"N", "k", "M", "qkw"})
    ->Args({10000, 10, 1, 3});

}  // namespace
}  // namespace bench
}  // namespace yask

BENCHMARK_MAIN();
