#include "src/storage/object_store.h"

#include <gtest/gtest.h>

#include <cmath>

namespace yask {
namespace {

TEST(ObjectStoreTest, AddAssignsDenseIds) {
  ObjectStore store;
  const ObjectId a = store.Add(Point{0, 0}, KeywordSet({1}), "a");
  const ObjectId b = store.Add(Point{1, 1}, KeywordSet({2}), "b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Get(a).id, a);
  EXPECT_EQ(store.Get(b).name, "b");
}

TEST(ObjectStoreTest, BoundsTrackAllPoints) {
  ObjectStore store;
  EXPECT_TRUE(store.bounds().empty());
  store.Add(Point{2, 3}, KeywordSet());
  store.Add(Point{-1, 5}, KeywordSet());
  EXPECT_EQ(store.bounds(), Rect::FromBounds(-1, 3, 2, 5));
}

TEST(ObjectStoreTest, BoundsDiagonal) {
  ObjectStore store;
  EXPECT_DOUBLE_EQ(store.BoundsDiagonal(), 0.0);
  store.Add(Point{0, 0}, KeywordSet());
  store.Add(Point{3, 4}, KeywordSet());
  EXPECT_DOUBLE_EQ(store.BoundsDiagonal(), 5.0);
}

TEST(ObjectStoreTest, FindByName) {
  ObjectStore store;
  store.Add(Point{0, 0}, KeywordSet(), "Starbucks Central");
  store.Add(Point{1, 1}, KeywordSet(), "Harbour Grand");
  EXPECT_EQ(store.FindByName("Harbour Grand"), 1u);
  EXPECT_EQ(store.FindByName("Ritz"), kInvalidObject);
}

TEST(ObjectStoreTest, SharedVocabulary) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->Intern("coffee");
  ObjectStore store(vocab);
  EXPECT_EQ(store.vocab().size(), 1u);
  store.mutable_vocab()->Intern("wifi");
  EXPECT_EQ(vocab->size(), 2u);
  EXPECT_EQ(store.shared_vocab().get(), vocab.get());
}

TEST(ObjectStoreTest, DocumentsPreserved) {
  ObjectStore store;
  Vocabulary* vocab = store.mutable_vocab();
  KeywordSet doc({vocab->Intern("clean"), vocab->Intern("wifi")});
  const ObjectId id = store.Add(Point{0.5, 0.5}, doc, "Hotel");
  EXPECT_EQ(store.Get(id).doc, doc);
}

}  // namespace
}  // namespace yask
