// Reshard round-trip property test: for every (N, M) in {1,2,4} x {1,2,4}
// and both routers, `ReshardSnapshots` rewriting N per-shard snapshot files
// into M must produce a layout whose answers are BYTE-identical to the
// single-store reference — same top-k ids in the same order with scores that
// compare equal with ==, and identical why-not refinements. This is the
// safety gate of `dataset_tool reshard`: the elastic-fleet runbook
// (docs/operations.md) promises a cutover to a resharded fleet is invisible
// to clients, which only holds if resharding preserves the exactness
// contract (global-id order, bounds accumulation order, vocabulary ids).
//
// Also covers the operational failure modes: refusing in-place resharding,
// unknown routers, and the manifest cross-validation that keeps a MIXED
// layout (some files from the old partition, some from the new) from ever
// being served.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/corpus/corpus.h"
#include "src/corpus/reshard.h"
#include "src/corpus/sharded_corpus.h"
#include "src/corpus/sharded_whynot_oracle.h"
#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"
#include "src/whynot/preference_adjustment.h"
#include "src/whynot/whynot_oracle.h"

namespace yask {
namespace {

ObjectStore TestStore() {
  DatasetSpec spec;
  spec.num_objects = 700;
  spec.vocabulary_size = 60;
  spec.min_keywords = 2;
  spec.max_keywords = 5;
  spec.seed = 977;
  return GenerateDataset(spec);
}

/// Writes an N-shard layout of `store` under a fresh prefix and returns it.
std::string SeedLayout(const ObjectStore& store, uint32_t shards,
                       const std::string& tag) {
  const std::string prefix = ::testing::TempDir() + "reshard_" + tag;
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, shards));
  EXPECT_TRUE(sharded.Save(prefix).ok());
  return prefix;
}

void ExpectBitIdentical(const TopKResult& actual, const TopKResult& expected,
                        const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << label << " rank " << i;
    // Bit-identity, not near-equality: the resharded layout must run the
    // exact same floating-point arithmetic as the single store.
    EXPECT_EQ(actual[i].score, expected[i].score) << label << " rank " << i;
  }
}

TEST(ReshardPropertyTest, RoundTripAnswersStayByteIdentical) {
  const ObjectStore store = TestStore();
  const Corpus baseline = CorpusBuilder().Build(ObjectStore(store));
  const SetRTopKEngine& reference = baseline.topk();
  const LocalWhyNotOracle local_oracle(baseline);

  for (const uint32_t from : {1u, 2u, 4u}) {
    const std::string in_prefix =
        SeedLayout(store, from, "in_" + std::to_string(from));
    for (const uint32_t to : {1u, 2u, 4u}) {
      for (const std::string router : {"grid", "hash"}) {
        const std::string label = std::to_string(from) + "->" +
                                  std::to_string(to) + " " + router;
        const std::string out_prefix = ::testing::TempDir() + "reshard_out_" +
                                       std::to_string(from) + "_" +
                                       std::to_string(to) + "_" + router;
        ReshardOptions options;
        options.num_shards = to;
        options.router = router;
        auto report = ReshardSnapshots(in_prefix, out_prefix, options);
        ASSERT_TRUE(report.ok()) << label << ": "
                                 << report.status().ToString();
        EXPECT_EQ(report->from_shards, from) << label;
        EXPECT_EQ(report->to_shards, to) << label;
        EXPECT_EQ(report->objects, store.size()) << label;

        auto loaded = ShardedCorpus::Load(out_prefix);
        ASSERT_TRUE(loaded.ok()) << label << ": "
                                 << loaded.status().ToString();
        const ShardedCorpus& resharded = *loaded;
        ASSERT_EQ(resharded.num_shards(), to) << label;
        ASSERT_EQ(resharded.size(), store.size()) << label;
        // The exactness preconditions: identical global frame and identical
        // objects under identical global ids.
        EXPECT_EQ(resharded.bounds().min_x, store.bounds().min_x) << label;
        EXPECT_EQ(resharded.bounds().max_x, store.bounds().max_x) << label;
        EXPECT_EQ(resharded.bounds().min_y, store.bounds().min_y) << label;
        EXPECT_EQ(resharded.bounds().max_y, store.bounds().max_y) << label;
        for (ObjectId id = 0; id < store.size(); id += 97) {
          EXPECT_EQ(resharded.Object(id).name, store.Get(id).name)
              << label << " id " << id;
          EXPECT_EQ(resharded.Object(id).loc.x, store.Get(id).loc.x)
              << label << " id " << id;
        }

        const ShardedTopKEngine engine(resharded);
        const ShardedWhyNotOracle oracle(resharded);
        Rng rng(1139);
        for (int trial = 0; trial < 6; ++trial) {
          Query q;
          q.loc = SampleQueryLocation(store, &rng);
          q.doc = SampleQueryKeywords(store, 1 + trial % 3, &rng);
          q.k = 3 + static_cast<uint32_t>(rng.NextBounded(8));
          const std::string trial_label =
              label + " trial " + std::to_string(trial);
          const TopKResult expected = reference.Query(q);
          ExpectBitIdentical(engine.Query(q), expected, trial_label);

          // Why-not refinement through the resharded layout: pick an object
          // ranked just outside the top-k and compare the full refinement.
          Query probe = q;
          probe.k = q.k + 4;
          const TopKResult wide = reference.Query(probe);
          if (wide.size() <= q.k + 1) continue;
          const std::vector<ObjectId> missing = {wide[q.k + 1].id};
          auto expected_ref = AdjustPreference(local_oracle, q, missing);
          auto actual_ref = AdjustPreference(oracle, q, missing);
          ASSERT_TRUE(expected_ref.ok()) << trial_label;
          ASSERT_TRUE(actual_ref.ok()) << trial_label;
          EXPECT_EQ(actual_ref->refined.w.ws, expected_ref->refined.w.ws)
              << trial_label;
          EXPECT_EQ(actual_ref->refined.k, expected_ref->refined.k)
              << trial_label;
          EXPECT_EQ(actual_ref->penalty.value, expected_ref->penalty.value)
              << trial_label;
        }
      }
    }
  }
}

TEST(ReshardPropertyTest, RefusesInPlaceReshard) {
  const ObjectStore store = TestStore();
  const std::string prefix = SeedLayout(store, 2, "inplace");
  ReshardOptions options;
  options.num_shards = 4;
  auto report = ReshardSnapshots(prefix, prefix, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReshardPropertyTest, RejectsUnknownRouter) {
  const ObjectStore store = TestStore();
  const std::string prefix = SeedLayout(store, 1, "router");
  ReshardOptions options;
  options.num_shards = 2;
  options.router = "zorder";
  auto report =
      ReshardSnapshots(prefix, ::testing::TempDir() + "reshard_bad", options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReshardPropertyTest, MixedLayoutCanNeverBeServed) {
  // The scenario the manifest cross-validation exists for: an operator
  // reshards 2 -> 4 but copies only SOME of the new files over the old
  // prefix. Loading the half-migrated directory must fail, not serve a
  // corpus with duplicated or missing objects.
  const ObjectStore store = TestStore();
  const std::string old_prefix = SeedLayout(store, 2, "mixed_old");
  const std::string new_prefix = ::testing::TempDir() + "reshard_mixed_new";
  ReshardOptions options;
  options.num_shards = 4;
  ASSERT_TRUE(ReshardSnapshots(old_prefix, new_prefix, options).ok());

  // Overwrite shard 0 of the old layout with shard 0 of the new one.
  const std::string src = ShardedCorpus::ShardFilePath(new_prefix, 0);
  const std::string dst = ShardedCorpus::ShardFilePath(old_prefix, 0);
  std::FILE* in = std::fopen(src.c_str(), "rb");
  std::FILE* out = std::fopen(dst.c_str(), "wb");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  char buf[4096];
  for (size_t n; (n = std::fread(buf, 1, sizeof buf, in)) > 0;) {
    ASSERT_EQ(std::fwrite(buf, 1, n, out), n);
  }
  std::fclose(in);
  std::fclose(out);

  auto loaded = ShardedCorpus::Load(old_prefix);
  ASSERT_FALSE(loaded.ok())
      << "a mixed 2-shard/4-shard layout must not load";
}

}  // namespace
}  // namespace yask
