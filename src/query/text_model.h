// Copyright (c) 2026 The YASK reproduction authors.
// Alternative textual relevance model: idf-weighted cosine similarity.
//
// The paper adopts Jaccard similarity "without loss of generality" and notes
// that "other textual similarity models can also be supported" (§2.1,
// footnote 1). This module provides the classic IR model used by the
// original IR-tree engine of Cong et al. [4]: documents and queries as
// binary term vectors weighted by inverse document frequency,
//
//   TSimCos(o, q) = Σ_{t ∈ o.doc ∩ q.doc} idf(t)²  /  (‖o‖ · ‖q‖) ,
//   ‖x‖ = sqrt(Σ_{t ∈ x} idf(t)²) ,  idf(t) = ln(1 + N / df(t)) .
//
// By Cauchy-Schwarz the similarity lies in [0, 1], so it drops into Eqn. (1)
// unchanged. CosineScorer mirrors Scorer for this model; the IR-tree
// (src/index/ir_tree.h) provides the matching node score bounds.

#ifndef YASK_QUERY_TEXT_MODEL_H_
#define YASK_QUERY_TEXT_MODEL_H_

#include <vector>

#include "src/common/keyword_set.h"
#include "src/query/query.h"
#include "src/query/scoring.h"
#include "src/storage/object_store.h"

namespace yask {

/// Corpus-level idf statistics; build once per store, immutable afterwards.
class IdfTable {
 public:
  explicit IdfTable(const ObjectStore& store);

  /// idf(t) = ln(1 + N / df(t)); 0 for terms absent from the corpus.
  double Idf(TermId t) const {
    return t < idf_.size() ? idf_[t] : 0.0;
  }
  double SquaredIdf(TermId t) const {
    const double v = Idf(t);
    return v * v;
  }

  /// Vector norm of a keyword set under this idf weighting.
  double Norm(const KeywordSet& doc) const;

  /// Σ idf(t)² over doc ∩ other (the cosine numerator).
  double DotProduct(const KeywordSet& a, const KeywordSet& b) const;

  size_t corpus_size() const { return corpus_size_; }

 private:
  std::vector<double> idf_;
  size_t corpus_size_;
};

/// TSimCos as defined above; 0 when either side is empty/unweighted.
double CosineSimilarity(const KeywordSet& a, const KeywordSet& b,
                        const IdfTable& idf);

/// Eqn. (1) with the cosine text model: ws·(1−SDist) + wt·TSimCos.
class CosineScorer {
 public:
  CosineScorer(const ObjectStore& store, const IdfTable& idf,
               const Query& query);

  double SDist(const Point& loc) const {
    return NormalizedSpatialDistance(loc, query_->loc, dist_norm_);
  }
  double TSim(const KeywordSet& doc) const {
    return CosineSimilarity(doc, query_->doc, *idf_);
  }
  double Score(const SpatialObject& o) const {
    return query_->w.ws * (1.0 - SDist(o.loc)) + query_->w.wt * TSim(o.doc);
  }
  double Score(ObjectId id) const { return Score(store_->Get(id)); }

  double MaxSpatialComponent(const Rect& mbr) const;

  const Query& query() const { return *query_; }
  const IdfTable& idf() const { return *idf_; }
  /// ‖q.doc‖, precomputed.
  double query_norm() const { return query_norm_; }

 private:
  const ObjectStore* store_;
  const IdfTable* idf_;
  const Query* query_;
  double dist_norm_;
  double query_norm_;
};

/// Reference top-k under the cosine model: score all, partial sort.
TopKResult CosineTopKScan(const ObjectStore& store, const IdfTable& idf,
                          const Query& query);

}  // namespace yask

#endif  // YASK_QUERY_TEXT_MODEL_H_
