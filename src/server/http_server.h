// Copyright (c) 2026 The YASK reproduction authors.
// A minimal embedded HTTP/1.1 server replacing the demo's Apache Tomcat
// (§3.3: "YASK's server side is built on Apache Tomcat"). Queries are sent
// "using the standard HTTP post method" (§3.2); this server accepts GET and
// POST, routes by exact path, and answers with Content-Length framed bodies.
//
// Design: one accept thread plus a fixed worker pool consuming a connection
// queue; a worker serves a connection's requests back to back (HTTP/1.1
// keep-alive — the coordinator->shard RPC path of the remote tier reuses one
// connection for thousands of small oracle calls) until the peer closes,
// asks for Connection: close, sends a malformed request, or goes idle past
// the keep-alive timeout. This is deliberately simple — the YASK engines,
// not the transport, are the point — but it is a real TCP server the
// examples and integration tests exercise end-to-end over loopback. A tiny
// blocking one-shot client (HttpFetch) is included for those tests; the
// persistent client lives in src/server/http_client.h.
//
// Hardening (the shard endpoints make this server internet-facing between
// nodes): oversized header blocks (> 1 MiB) and declared bodies (> 32 MiB)
// are rejected with 431/413 and the connection dropped; unparseable request
// lines get 400; a known path with the wrong method gets 405; requests that
// stall mid-transfer are dropped on a deadline.

#ifndef YASK_SERVER_HTTP_SERVER_H_
#define YASK_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace yask {

/// A parsed HTTP request.
struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // Path without the query string.
  std::map<std::string, std::string> query_params;
  /// Request headers, keys lowercased ("x-yask-trace" carries the
  /// propagated trace context on the coordinator->shard RPC path).
  std::map<std::string, std::string> headers;
  std::string body;
};

/// An HTTP response to be serialised.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse Json(std::string body) {
    return HttpResponse{200, "application/json", std::move(body)};
  }
  static HttpResponse Error(int status, const std::string& message);
};

/// The embedded server.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// `port` 0 picks an ephemeral port (see bound_port() after Start()).
  /// `keep_alive_idle_ms` bounds how long a worker waits for the next
  /// request on an idle keep-alive connection before recycling it (clients
  /// reconnect transparently); it also bounds Stop() latency together with
  /// the internal 500 ms poll tick.
  explicit HttpServer(uint16_t port = 0, size_t num_workers = 4,
                      int keep_alive_idle_ms = 5000);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact (method, path) pair.
  void Route(const std::string& method, const std::string& path,
             Handler handler);

  /// Registers a handler for every path starting with `prefix` (e.g.
  /// "/trace/" serves GET /trace/<id>); exact routes win, then the longest
  /// matching prefix. The handler reads the rest of the path off req.path.
  void RoutePrefix(const std::string& method, const std::string& prefix,
                   Handler handler);

  /// Binds, listens and spawns the accept/worker threads.
  Status Start();

  /// Stops accepting and joins the workers. Connections already being
  /// handled finish; connections still queued are closed unserved (so Stop()
  /// neither leaks fds nor blocks behind a backlog). Idempotent.
  void Stop();

  /// The actual port after Start() (useful with port 0).
  uint16_t bound_port() const { return bound_port_; }

  bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);

  uint16_t port_;
  size_t num_workers_;
  int keep_alive_idle_ms_;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};

  std::map<std::pair<std::string, std::string>, Handler> routes_;
  // (method, prefix) -> handler; consulted after the exact map misses.
  std::map<std::pair<std::string, std::string>, Handler> prefix_routes_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<int> pending_;  // Accepted connection fds.
};

/// Percent-decodes a URL component.
std::string UrlDecode(std::string_view s);

/// Blocking loopback HTTP client for tests and examples: sends one request,
/// returns the response body; the HTTP status is written to `status_out` if
/// non-null.
Result<std::string> HttpFetch(uint16_t port, const std::string& method,
                              const std::string& path_and_query,
                              const std::string& body = "",
                              int* status_out = nullptr);

}  // namespace yask

#endif  // YASK_SERVER_HTTP_SERVER_H_
