// Experiment E15: the coordinator data plane under production-shaped load.
//
// Boots a loopback shard fleet, connects TWO coordinators over it — one with
// the result cache + single-flight coalescing off (the pure event-loop +
// multiplexed-transport data plane), one with it on — plus the in-process
// sharded service as the exactness reference, then drives a production-
// shaped /query workload (Zipfian keyword popularity, geo-clustered
// hotspots; see bench_util.h ProductionWorkload) from N persistent
// keep-alive client connections in two disciplines:
//
//   * closed loop — every client issues its next request the moment the
//     previous response lands. Measures capacity (req/s) and the latency
//     the server CAN deliver, but hides queueing: a slow response slows the
//     arrival stream down with it.
//   * open loop — clients fire at a fixed aggregate rate (the closed-loop
//     capacity measured moments before) regardless of when responses come
//     back, and each latency is measured from the request's INTENDED start
//     time, so queueing delay a closed loop would mask (coordinated
//     omission) is charged to the tail where it belongs.
//
// Gates (non-zero exit on failure):
//   * exactness — every distinct workload shape answered by both
//     coordinators (and for the caching one: both the miss and the hit)
//     byte-identical to the in-process sharded service modulo timing fields
//     and the fresh query_id;
//   * zero non-200s across every measured phase.
//
// Each measured phase runs `--repeats` times and the quietest repeat is
// reported (highest throughput for the closed phase, lowest p99 for the
// open ones) — a shared host's scheduler noise lands squarely on the p99 of
// a seconds-long phase, and best-of-N is this repo's usual discipline for
// keeping a nightly-gated number from flapping. The error and exactness
// gates accumulate over EVERY repeat, not just the reported one.
//
//   $ ./bench_load [--n=20000] [--shards=2] [--replicas=1] [--conns=64]
//                  [--seconds=2] [--repeats=3] [--json=BENCH_load.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/corpus/remote_corpus.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/http_client.h"
#include "src/server/json.h"
#include "src/server/shard_service.h"
#include "src/server/yask_service.h"

namespace yask {
namespace bench {
namespace {

/// Drops the timing field and the per-request query_id, then re-dumps: what
/// is left must be byte-identical across data planes.
JsonValue Strip(const JsonValue& v) {
  if (v.is_object()) {
    JsonValue out = JsonValue::MakeObject();
    for (const auto& [key, value] : v.object_items()) {
      if (key == "response_millis" || key == "query_id") continue;
      out.Set(key, Strip(value));
    }
    return out;
  }
  if (v.is_array()) {
    JsonValue out = JsonValue::MakeArray();
    for (const JsonValue& item : v.array_items()) out.Append(Strip(item));
    return out;
  }
  return v;
}

bool Normalize(const std::string& payload, std::string* out) {
  auto parsed = JsonValue::Parse(payload);
  if (!parsed.ok()) return false;
  *out = Strip(parsed.value()).Dump();
  return true;
}

struct PhaseResult {
  double rps = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  uint64_t requests = 0;
  uint64_t non_200 = 0;
  uint64_t mismatches = 0;
};

double Quantile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  const size_t rank =
      static_cast<size_t>(q * static_cast<double>(sorted->size() - 1));
  return (*sorted)[rank];
}

/// One load phase against `port`. `open_rate_rps` == 0 runs closed loop;
/// otherwise each of the `conns` clients fires at rate/conns with latencies
/// measured from intended start times (coordinated-omission corrected).
/// Every `kCheckEvery`-th response is normalized and checked against the
/// shape's reference payload.
PhaseResult RunPhase(uint16_t port, const ProductionWorkload& workload,
                     const std::vector<std::string>& bodies,
                     const std::vector<std::string>& references,
                     size_t conns, double seconds, double open_rate_rps,
                     uint64_t seed) {
  constexpr size_t kCheckEvery = 16;
  std::atomic<uint64_t> non_200{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::vector<double>> latencies(conns);
  std::vector<uint64_t> counts(conns, 0);

  std::vector<std::thread> clients;
  for (size_t c = 0; c < conns; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(seed + c * 7919);
      HttpClientConnection conn;
      if (!conn.Connect("127.0.0.1", port, 2000).ok()) {
        non_200.fetch_add(1);
        return;
      }
      const auto start = std::chrono::steady_clock::now();
      const auto end =
          start + std::chrono::microseconds(
                      static_cast<int64_t>(seconds * 1e6));
      const double per_conn_rate =
          open_rate_rps > 0.0 ? open_rate_rps / static_cast<double>(conns)
                              : 0.0;
      const auto interval =
          per_conn_rate > 0.0
              ? std::chrono::nanoseconds(
                    static_cast<int64_t>(1e9 / per_conn_rate))
              : std::chrono::nanoseconds(0);
      size_t i = 0;
      while (true) {
        auto intended = start + interval * static_cast<int64_t>(i);
        if (per_conn_rate == 0.0) intended = std::chrono::steady_clock::now();
        if (intended >= end) break;
        if (per_conn_rate > 0.0) std::this_thread::sleep_until(intended);
        const size_t shape = workload.Draw(&rng);
        int status = 0;
        auto resp =
            conn.Call("POST", "/query", bodies[shape], 5000, &status);
        const auto done = std::chrono::steady_clock::now();
        if (done >= end && per_conn_rate == 0.0) break;
        latencies[c].push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(done -
                                                                 intended)
                .count() /
            1e6);
        ++counts[c];
        if (!resp.ok()) {
          non_200.fetch_add(1);
          // Keep-alive socket died (shouldn't under a healthy fleet);
          // reconnect so one hiccup doesn't zero this client out.
          if (!conn.Connect("127.0.0.1", port, 2000).ok()) return;
          ++i;
          continue;
        }
        if (status != 200) non_200.fetch_add(1);
        if (status == 200 && i % kCheckEvery == 0) {
          std::string norm;
          if (!Normalize(*resp, &norm) || norm != references[shape]) {
            mismatches.fetch_add(1);
          }
        }
        ++i;
      }
    });
  }
  Timer timer;
  for (std::thread& t : clients) t.join();
  const double elapsed_s = timer.ElapsedMillis() / 1000.0;

  PhaseResult r;
  std::vector<double> all;
  for (size_t c = 0; c < conns; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    r.requests += counts[c];
  }
  r.p50 = Quantile(&all, 0.50);
  r.p99 = Quantile(&all, 0.99);
  r.rps = elapsed_s > 0.0 ? static_cast<double>(r.requests) / elapsed_s : 0.0;
  r.non_200 = non_200.load();
  r.mismatches = mismatches.load();
  return r;
}

/// Reads one un-labelled counter value out of a /metrics exposition.
double MetricValue(const std::string& exposition, const std::string& family) {
  std::istringstream lines(exposition);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind(family + " ", 0) == 0 ||
        line.rfind(family + "{} ", 0) == 0) {
      return std::strtod(line.c_str() + line.rfind(' ') + 1, nullptr);
    }
  }
  return 0.0;
}

}  // namespace
}  // namespace bench
}  // namespace yask

int main(int argc, char** argv) {
  using namespace yask;
  using namespace yask::bench;

  size_t n = 20000;
  size_t shards = 2;
  size_t replicas = 1;
  size_t conns = 64;
  double seconds = 2.0;
  int repeats = 3;
  std::string json_path = "BENCH_load.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<size_t>(std::strtoull(arg.c_str() + 4, nullptr, 10));
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards =
          static_cast<size_t>(std::strtoull(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("--replicas=", 0) == 0) {
      replicas =
          static_cast<size_t>(std::strtoull(arg.c_str() + 11, nullptr, 10));
    } else if (arg.rfind("--conns=", 0) == 0) {
      conns =
          static_cast<size_t>(std::strtoull(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--seconds=", 0) == 0) {
      seconds = std::strtod(arg.c_str() + 10, nullptr);
    } else if (arg.rfind("--repeats=", 0) == 0) {
      repeats = std::max(
          1, static_cast<int>(std::strtol(arg.c_str() + 10, nullptr, 10)));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n=N] [--shards=S] [--replicas=R] "
                   "[--conns=C] [--seconds=T] [--repeats=K] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  Timer setup_timer;
  const ObjectStore store = GenerateDataset(SharedDatasetSpec(n));
  const ShardedCorpus sharded = ShardedCorpus::Partition(
      store, GridShardRouter::Fit(store, static_cast<uint32_t>(shards)));

  // The loopback fleet: shards x replicas ShardService processes-in-threads.
  std::vector<std::unique_ptr<ShardService>> fleet;
  std::vector<std::string> endpoints;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    std::string group;
    for (size_t r = 0; r < std::max<size_t>(replicas, 1); ++r) {
      ShardService::Info info;
      info.shard_index = static_cast<uint32_t>(s);
      info.shard_count = static_cast<uint32_t>(sharded.num_shards());
      info.global_bounds = sharded.bounds();
      info.dist_norm = sharded.dist_norm();
      info.to_global = sharded.shard_global_ids(s);
      info.router = sharded.router_description();
      auto service = std::make_unique<ShardService>(sharded.shard(s), info,
                                                    ShardServiceOptions{});
      if (!service->Start().ok()) {
        std::fprintf(stderr, "cannot start shard %zu\n", s);
        return 1;
      }
      if (!group.empty()) group += '|';
      group += "127.0.0.1:" + std::to_string(service->port());
      fleet.push_back(std::move(service));
    }
    endpoints.push_back(std::move(group));
  }

  auto plain_corpus = RemoteCorpus::Connect(endpoints);
  auto caching_corpus = RemoteCorpus::Connect(endpoints);
  if (!plain_corpus.ok() || !caching_corpus.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  YaskService plain(*plain_corpus);  // Result cache off: every request fans out.
  YaskServiceOptions caching_options;
  caching_options.enable_result_cache = true;
  YaskService caching(*caching_corpus, caching_options);
  YaskService local(sharded);  // The in-process exactness reference.
  if (!plain.Start().ok() || !caching.Start().ok() || !local.Start().ok()) {
    std::fprintf(stderr, "cannot start services\n");
    return 1;
  }

  // The production-shaped workload and its per-shape reference payloads.
  const ProductionWorkload workload(store);
  std::vector<std::string> bodies(workload.distinct());
  std::vector<std::string> references(workload.distinct());
  bool exact = true;
  for (size_t i = 0; i < workload.distinct(); ++i) {
    const Query& q = workload.shape(i);
    JsonValue body = JsonValue::MakeObject();
    body.Set("x", JsonValue(q.loc.x));
    body.Set("y", JsonValue(q.loc.y));
    body.Set("keywords", JsonValue(q.doc.ToString(sharded.vocab())));
    body.Set("k", JsonValue(static_cast<size_t>(q.k)));
    bodies[i] = body.Dump();

    int status = 0;
    auto ref = HttpFetch(local.port(), "POST", "/query", bodies[i], &status);
    if (!ref.ok() || status != 200 || !Normalize(*ref, &references[i])) {
      std::fprintf(stderr, "reference request %zu failed\n", i);
      return 1;
    }
    // The exactness gate proper: the plain coordinator, then the caching one
    // twice — the miss (computed over the wire) and the hit (served from the
    // cache) must both match the in-process reference byte for byte.
    std::string norm;
    auto got = HttpFetch(plain.port(), "POST", "/query", bodies[i], &status);
    exact &= got.ok() && status == 200 && Normalize(*got, &norm) &&
             norm == references[i];
    for (int round = 0; round < 2; ++round) {
      got = HttpFetch(caching.port(), "POST", "/query", bodies[i], &status);
      exact &= got.ok() && status == 200 && Normalize(*got, &norm) &&
               norm == references[i];
    }
  }
  if (!exact) {
    std::fprintf(stderr, "EXACTNESS BUG: coordinator payloads diverge from "
                         "the in-process sharded service\n");
    return 1;
  }
  std::printf("fleet up: n=%zu, %zu shards x %zu replicas, %zu distinct "
              "shapes, %zu conns (setup %.0f ms)\n",
              n, shards, replicas, workload.distinct(), conns,
              setup_timer.ElapsedMillis());

  // Best-of-`repeats` (see the file comment): every repeat's errors and
  // mismatches count toward the gates; only the quietest repeat's numbers
  // are reported. `better(candidate, incumbent)` picks the reported one.
  uint64_t total_requests = 0, total_non_200 = 0, total_mismatches = 0;
  auto best_of = [&](auto run, auto better) {
    PhaseResult best;
    for (int rep = 0; rep < repeats; ++rep) {
      const PhaseResult r = run(static_cast<uint64_t>(rep));
      total_requests += r.requests;
      total_non_200 += r.non_200;
      total_mismatches += r.mismatches;
      if (rep == 0 || better(r, best)) best = r;
    }
    return best;
  };
  const auto lowest_p99 = [](const PhaseResult& a, const PhaseResult& b) {
    return a.p99 < b.p99;
  };

  // --- Phase 1: closed loop against the plain data plane = its capacity. ---
  const PhaseResult closed = best_of(
      [&](uint64_t rep) {
        return RunPhase(plain.port(), workload, bodies, references, conns,
                        seconds, /*open_rate_rps=*/0.0, kDatasetSeed + rep);
      },
      [](const PhaseResult& a, const PhaseResult& b) { return a.rps > b.rps; });
  std::printf("closed loop (no cache): %.0f req/s, p50 %.2f ms, "
              "p99 %.2f ms\n",
              closed.rps, closed.p50, closed.p99);

  // --- Phase 2+3: open loop at ~90% of that capacity, both data planes.
  // Same arrival process, so the p99s compare apples to apples; latency is
  // measured from intended start (coordinated omission charged to the tail).
  const double open_rate = closed.rps * 0.9;
  const PhaseResult open_plain = best_of(
      [&](uint64_t rep) {
        return RunPhase(plain.port(), workload, bodies, references, conns,
                        seconds, open_rate, kDatasetSeed + 101 + rep);
      },
      lowest_p99);
  std::printf("open loop %.0f req/s (no cache): p50 %.2f ms, p99 %.2f ms\n",
              open_rate, open_plain.p50, open_plain.p99);
  const PhaseResult open_cached = best_of(
      [&](uint64_t rep) {
        return RunPhase(caching.port(), workload, bodies, references, conns,
                        seconds, open_rate, kDatasetSeed + 202 + rep);
      },
      lowest_p99);
  std::printf("open loop %.0f req/s (cache+coalesce): p50 %.2f ms, "
              "p99 %.2f ms\n",
              open_rate, open_cached.p50, open_cached.p99);

  double hit_ratio = 0.0;
  if (auto metrics = HttpFetch(caching.port(), "GET", "/metrics");
      metrics.ok()) {
    const double hits =
        MetricValue(*metrics, "yask_result_cache_hits_total");
    const double misses =
        MetricValue(*metrics, "yask_result_cache_misses_total");
    if (hits + misses > 0.0) hit_ratio = hits / (hits + misses);
  }
  std::printf("result cache hit ratio: %.3f\n", hit_ratio);

  const uint64_t non_200 = total_non_200;
  const uint64_t mismatches = total_mismatches;
  if (non_200 != 0) std::printf("ZERO-ERROR GATE FAILED (%llu non-200)\n",
                                static_cast<unsigned long long>(non_200));
  if (mismatches != 0) std::printf("EXACTNESS BUG UNDER LOAD (%llu)\n",
                                   static_cast<unsigned long long>(
                                       mismatches));

  plain.Stop();
  caching.Stop();
  local.Stop();
  for (auto& service : fleet) service->Stop();

  JsonValue context = JsonValue::MakeObject();
  context.Set("bench", JsonValue("load"));
  context.Set("n", JsonValue(n));
  context.Set("shards", JsonValue(shards));
  context.Set("replicas", JsonValue(replicas));
  context.Set("conns", JsonValue(conns));
  context.Set("open_rate_rps", JsonValue(open_rate));
  context.Set("repeats", JsonValue(static_cast<size_t>(repeats)));
  context.Set("requests", JsonValue(static_cast<size_t>(total_requests)));
  context.Set("non_200", JsonValue(static_cast<size_t>(non_200)));
  context.Set("mismatches", JsonValue(static_cast<size_t>(mismatches)));
  context.Set("cache_hit_ratio", JsonValue(hit_ratio));
  context.Set("results_match", JsonValue(non_200 == 0 && mismatches == 0));

  JsonValue benches = JsonValue::MakeArray();
  auto bench_row = [&](const std::string& name, double value,
                       const std::string& unit) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("name", JsonValue(name));
    row.Set("run_type", JsonValue("iteration"));
    row.Set("iterations", JsonValue(static_cast<size_t>(1)));
    row.Set("real_time", JsonValue(value));
    row.Set("cpu_time", JsonValue(value));
    row.Set("time_unit", JsonValue(unit));
    benches.Append(std::move(row));
  };
  const std::string tag = "/conns:" + std::to_string(conns) + "/" +
                          std::to_string(n);
  bench_row("load/closed_rps" + tag, closed.rps, "req/s");
  bench_row("load/closed_p50" + tag, closed.p50, "ms");
  bench_row("load/closed_p99" + tag, closed.p99, "ms");
  bench_row("load/open_p50" + tag, open_plain.p50, "ms");
  bench_row("load/open_p99" + tag, open_plain.p99, "ms");
  bench_row("load/open_cached_p50" + tag, open_cached.p50, "ms");
  bench_row("load/open_cached_p99" + tag, open_cached.p99, "ms");
  bench_row("load/cache_hit_ratio" + tag, hit_ratio, "ratio");

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("context", std::move(context));
  doc.Set("benchmarks", std::move(benches));
  std::ofstream out(json_path, std::ios::trunc);
  out << doc.Dump() << "\n";
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  return non_200 == 0 && mismatches == 0 ? 0 : 1;
}
