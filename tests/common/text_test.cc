#include "src/common/text.h"

#include <gtest/gtest.h>

namespace yask {
namespace {

TEST(TokenizeTest, SplitsOnNonAlnumAndLowercases) {
  EXPECT_EQ(Tokenize("Clean, Comfortable WiFi!"),
            (std::vector<std::string>{"clean", "comfortable", "wifi"}));
  EXPECT_EQ(Tokenize("top-3 spatial"),
            (std::vector<std::string>{"top", "3", "spatial"}));
  EXPECT_TRUE(Tokenize("...").empty());
  EXPECT_TRUE(Tokenize("").empty());
}

TEST(IsStopwordTest, CommonWords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_FALSE(IsStopword("coffee"));
  EXPECT_FALSE(IsStopword("hotel"));
}

TEST(ParseKeywordsTest, InternsTokens) {
  Vocabulary vocab;
  KeywordSet s = ParseKeywords("the clean and comfortable hotel", &vocab);
  // "the", "and" removed as stopwords.
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(vocab.Contains("clean"));
  EXPECT_TRUE(vocab.Contains("comfortable"));
  EXPECT_TRUE(vocab.Contains("hotel"));
  EXPECT_FALSE(vocab.Contains("the"));
}

TEST(ParseKeywordsTest, MinTokenLengthDropsShortTokens) {
  Vocabulary vocab;
  KeywordSet s = ParseKeywords("a b coffee", &vocab);
  EXPECT_EQ(s.size(), 1u);  // Only "coffee" survives.
}

TEST(ParseKeywordsTest, OptionsCanKeepStopwords) {
  Vocabulary vocab;
  TextOptions opts;
  opts.remove_stopwords = false;
  opts.min_token_length = 1;
  KeywordSet s = ParseKeywords("the cafe", &vocab, opts);
  EXPECT_EQ(s.size(), 2u);
}

TEST(ParseKeywordsTest, DuplicateTokensCollapse) {
  Vocabulary vocab;
  KeywordSet s = ParseKeywords("coffee coffee COFFEE", &vocab);
  EXPECT_EQ(s.size(), 1u);
}

TEST(LookupKeywordsTest, DropsUnknownTokens) {
  Vocabulary vocab;
  vocab.Intern("coffee");
  vocab.Intern("wifi");
  KeywordSet s = LookupKeywords("coffee sauna wifi", vocab);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(vocab.Find("coffee")));
  EXPECT_TRUE(s.Contains(vocab.Find("wifi")));
  // The vocabulary is not mutated.
  EXPECT_FALSE(vocab.Contains("sauna"));
}

TEST(LookupKeywordsTest, EmptyQuery) {
  Vocabulary vocab;
  vocab.Intern("coffee");
  EXPECT_TRUE(LookupKeywords("", vocab).empty());
  EXPECT_TRUE(LookupKeywords("unknown words only", vocab).empty());
}

}  // namespace
}  // namespace yask
