// Distributed why-not property test — the acceptance gate of the oracle
// seam: for randomized datasets, shard counts (1/2/4/8), routers and
// queries, a WhyNotEngine over a ShardedCorpus must answer BIT-IDENTICALLY
// to a WhyNotEngine over the unsharded Corpus built from the same objects —
// every explanation field (texts included), both refined queries, the
// recommendation, the refined result order, and the combined refinement.
// Score doubles must compare equal with ==: the sharded oracle must run the
// exact same floating-point arithmetic, merged exactly.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/corpus/sharded_corpus.h"
#include "src/corpus/sharded_whynot_oracle.h"
#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"
#include "src/storage/hotel_generator.h"
#include "src/whynot/why_not_engine.h"

namespace yask {
namespace {

void ExpectSameResult(const TopKResult& sharded, const TopKResult& expected,
                      const std::string& label) {
  ASSERT_EQ(sharded.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(sharded[i].id, expected[i].id) << label << " rank " << i;
    EXPECT_EQ(sharded[i].score, expected[i].score) << label << " rank " << i;
  }
}

void ExpectSameExplanations(
    const std::vector<MissingObjectExplanation>& sharded,
    const std::vector<MissingObjectExplanation>& expected,
    const std::string& label) {
  ASSERT_EQ(sharded.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const MissingObjectExplanation& s = sharded[i];
    const MissingObjectExplanation& e = expected[i];
    EXPECT_EQ(s.id, e.id) << label;
    EXPECT_EQ(s.rank, e.rank) << label << " id " << e.id;
    EXPECT_EQ(s.score, e.score) << label << " id " << e.id;
    EXPECT_EQ(s.sdist, e.sdist) << label << " id " << e.id;
    EXPECT_EQ(s.tsim, e.tsim) << label << " id " << e.id;
    EXPECT_EQ(s.kth_score, e.kth_score) << label << " id " << e.id;
    EXPECT_EQ(s.kth_sdist, e.kth_sdist) << label << " id " << e.id;
    EXPECT_EQ(s.kth_tsim, e.kth_tsim) << label << " id " << e.id;
    EXPECT_EQ(s.reason, e.reason) << label << " id " << e.id;
    EXPECT_EQ(s.recommendation, e.recommendation) << label << " id " << e.id;
    EXPECT_EQ(s.text, e.text) << label << " id " << e.id;
  }
}

void ExpectSamePenalty(const PenaltyBreakdown& s, const PenaltyBreakdown& e,
                       const std::string& label) {
  EXPECT_EQ(s.value, e.value) << label;
  EXPECT_EQ(s.k_term, e.k_term) << label;
  EXPECT_EQ(s.mod_term, e.mod_term) << label;
  EXPECT_EQ(s.delta_k, e.delta_k) << label;
  EXPECT_EQ(s.delta_w, e.delta_w) << label;
  EXPECT_EQ(s.delta_doc, e.delta_doc) << label;
}

void ExpectSameAnswer(const WhyNotAnswer& sharded, const WhyNotAnswer& expected,
                      const std::string& label) {
  ExpectSameExplanations(sharded.explanations, expected.explanations, label);

  ASSERT_EQ(sharded.preference.has_value(), expected.preference.has_value())
      << label;
  if (expected.preference.has_value()) {
    const RefinedPreferenceQuery& s = *sharded.preference;
    const RefinedPreferenceQuery& e = *expected.preference;
    EXPECT_EQ(s.refined.w.ws, e.refined.w.ws) << label;
    EXPECT_EQ(s.refined.w.wt, e.refined.w.wt) << label;
    EXPECT_EQ(s.refined.k, e.refined.k) << label;
    EXPECT_EQ(s.refined.doc.ids(), e.refined.doc.ids()) << label;
    EXPECT_EQ(s.original_rank, e.original_rank) << label;
    EXPECT_EQ(s.refined_rank, e.refined_rank) << label;
    EXPECT_EQ(s.already_in_result, e.already_in_result) << label;
    ExpectSamePenalty(s.penalty, e.penalty, label + " pref penalty");
  }

  ASSERT_EQ(sharded.keyword.has_value(), expected.keyword.has_value())
      << label;
  if (expected.keyword.has_value()) {
    const RefinedKeywordQuery& s = *sharded.keyword;
    const RefinedKeywordQuery& e = *expected.keyword;
    EXPECT_EQ(s.refined.doc.ids(), e.refined.doc.ids()) << label;
    EXPECT_EQ(s.refined.k, e.refined.k) << label;
    EXPECT_EQ(s.original_rank, e.original_rank) << label;
    EXPECT_EQ(s.refined_rank, e.refined_rank) << label;
    EXPECT_EQ(s.already_in_result, e.already_in_result) << label;
    ExpectSamePenalty(s.penalty, e.penalty, label + " kw penalty");
  }

  EXPECT_EQ(sharded.recommended, expected.recommended) << label;
  ExpectSameResult(sharded.refined_result, expected.refined_result,
                   label + " refined result");
}

void ExpectSameCombined(const CombinedRefinement& s,
                        const CombinedRefinement& e,
                        const std::string& label) {
  EXPECT_EQ(s.refined.w.ws, e.refined.w.ws) << label;
  EXPECT_EQ(s.refined.doc.ids(), e.refined.doc.ids()) << label;
  EXPECT_EQ(s.refined.k, e.refined.k) << label;
  EXPECT_EQ(s.total_penalty, e.total_penalty) << label;
  EXPECT_EQ(s.preference_first, e.preference_first) << label;
  EXPECT_EQ(s.original_rank, e.original_rank) << label;
  EXPECT_EQ(s.refined_rank, e.refined_rank) << label;
  ExpectSamePenalty(s.preference_penalty, e.preference_penalty,
                    label + " pref step");
  ExpectSamePenalty(s.keyword_penalty, e.keyword_penalty, label + " kw step");
}

/// Missing objects ranked just outside the top-k.
std::vector<ObjectId> PickMissing(const ObjectStore& store, const Query& q,
                                  size_t count, size_t offset) {
  Query probe = q;
  probe.k = static_cast<uint32_t>(q.k + offset + count + 5);
  const TopKResult wide = TopKScan(store, probe);
  std::vector<ObjectId> missing;
  for (size_t i = q.k + offset; i < wide.size() && missing.size() < count;
       ++i) {
    missing.push_back(wide[i].id);
  }
  return missing;
}

struct TrialOptions {
  std::vector<uint32_t> shard_counts = {1, 2, 4, 8};
  bool use_hash_router = false;
  /// Force a pool of this many workers so the parallel fan-out/merge path
  /// runs even on a single-core CI host (0 = auto).
  size_t fanout_threads = 3;
  int trials = 4;
  WhyNotOptions whynot;
};

void RunPropertyTrials(const ObjectStore& store, uint64_t query_seed,
                       const TrialOptions& topt = {}) {
  const Corpus baseline = CorpusBuilder().Build(ObjectStore(store));
  const WhyNotEngine reference(baseline);

  CorpusOptions options;
  options.fanout_threads = topt.fanout_threads;
  for (const uint32_t shards : topt.shard_counts) {
    std::unique_ptr<ShardRouter> router;
    if (topt.use_hash_router) {
      router = std::make_unique<HashShardRouter>(shards);
    } else {
      router = GridShardRouter::Fit(store, shards);
    }
    const std::string label = router->Describe();
    const ShardedCorpus sharded =
        ShardedCorpus::Partition(store, std::move(router), options);
    const WhyNotEngine engine(sharded);

    Rng rng(query_seed);
    for (int trial = 0; trial < topt.trials; ++trial) {
      Query q;
      q.loc = SampleQueryLocation(store, &rng);
      q.doc = SampleQueryKeywords(store, 1 + trial % 3, &rng);
      q.k = 3 + static_cast<uint32_t>(rng.NextBounded(5));
      const size_t m_count = 1 + trial % 2;
      const std::vector<ObjectId> missing =
          PickMissing(store, q, m_count, /*offset=*/2 + trial);
      if (missing.size() != m_count) continue;
      const std::string tag =
          label + " trial " + std::to_string(trial) + " k=" +
          std::to_string(q.k);

      auto expected = reference.Answer(q, missing, topt.whynot);
      auto actual = engine.Answer(q, missing, topt.whynot);
      ASSERT_TRUE(expected.ok()) << tag << ": " << expected.status().ToString();
      ASSERT_TRUE(actual.ok()) << tag << ": " << actual.status().ToString();
      ExpectSameAnswer(*actual, *expected, tag);

      auto combined_e = reference.CombineRefinements(q, missing, topt.whynot);
      auto combined_a = engine.CombineRefinements(q, missing, topt.whynot);
      ASSERT_TRUE(combined_e.ok()) << tag;
      ASSERT_TRUE(combined_a.ok()) << tag;
      ExpectSameCombined(*combined_a, *combined_e, tag + " combined");
    }
  }
}

TEST(ShardedWhyNotPropertyTest, ClusteredSyntheticDataset) {
  DatasetSpec spec;
  spec.num_objects = 900;
  spec.vocabulary_size = 60;
  spec.min_keywords = 2;
  spec.max_keywords = 5;
  spec.seed = 271;
  RunPropertyTrials(GenerateDataset(spec), /*query_seed=*/301);
}

TEST(ShardedWhyNotPropertyTest, UniformSyntheticDataset) {
  DatasetSpec spec;
  spec.num_objects = 600;
  spec.vocabulary_size = 40;
  spec.spatial = SpatialDistribution::kUniform;
  spec.min_keywords = 2;
  spec.max_keywords = 4;
  spec.seed = 272;
  RunPropertyTrials(GenerateDataset(spec), /*query_seed=*/302);
}

TEST(ShardedWhyNotPropertyTest, HotelDemoDataset) {
  RunPropertyTrials(GenerateHotelDataset(), /*query_seed=*/303);
}

TEST(ShardedWhyNotPropertyTest, HashRouterScatter) {
  // A locality-free router is the merge's worst case: every shard holds a
  // slice of every neighbourhood, so nothing prunes and every fan-out
  // actually merges work from all shards.
  DatasetSpec spec;
  spec.num_objects = 500;
  spec.vocabulary_size = 40;
  spec.min_keywords = 2;
  spec.max_keywords = 4;
  spec.seed = 273;
  TrialOptions topt;
  topt.use_hash_router = true;
  topt.shard_counts = {2, 4, 8};
  RunPropertyTrials(GenerateDataset(spec), /*query_seed=*/304, topt);
}

TEST(ShardedWhyNotPropertyTest, BasicModesAgreeWithSharding) {
  // The paper's baseline algorithms (full rescans, no index pruning) must
  // also merge exactly: the basic-mode code paths of the oracle are
  // different (per-shard scans instead of per-shard index walks).
  DatasetSpec spec;
  spec.num_objects = 400;
  spec.vocabulary_size = 30;
  spec.min_keywords = 2;
  spec.max_keywords = 4;
  spec.seed = 274;
  TrialOptions topt;
  topt.shard_counts = {1, 4};
  topt.trials = 3;
  topt.whynot.pref_mode = PrefAdjustMode::kBasic;
  topt.whynot.kw_mode = KwAdaptMode::kBasic;
  RunPropertyTrials(GenerateDataset(spec), /*query_seed=*/305, topt);
}

TEST(ShardedWhyNotPropertyTest, TieHeavyDegenerateDataset) {
  // Exact score ties everywhere: clones at shared points with shared docs.
  // Every merge rule must reproduce the global-id tie order across shard
  // borders — ranks, crossing candidates, refined results.
  ObjectStore store;
  const TermId a = store.mutable_vocab()->Intern("a");
  const TermId b = store.mutable_vocab()->Intern("b");
  const TermId c = store.mutable_vocab()->Intern("c");
  for (int i = 0; i < 240; ++i) {
    const double x = 0.1 + 0.2 * (i % 5);  // Five stacked columns.
    KeywordSet doc(i % 3 == 0   ? std::vector<TermId>{a}
                   : i % 3 == 1 ? std::vector<TermId>{a, b}
                                : std::vector<TermId>{b, c});
    store.Add(Point{x, 0.5}, std::move(doc), "clone");
  }
  TrialOptions topt;
  topt.trials = 3;
  RunPropertyTrials(store, /*query_seed=*/306, topt);
}

TEST(ShardedWhyNotPropertyTest, InlineFanOutWithoutPool) {
  // fanout_threads = 0 on a single-core host (or a 1-shard corpus) leaves
  // the corpus without a pool; the inline sequential fan-out must merge to
  // the same bits.
  DatasetSpec spec;
  spec.num_objects = 400;
  spec.vocabulary_size = 40;
  spec.min_keywords = 2;
  spec.max_keywords = 4;
  spec.seed = 275;
  TrialOptions topt;
  topt.fanout_threads = 0;
  topt.shard_counts = {1, 4};
  topt.trials = 3;
  RunPropertyTrials(GenerateDataset(spec), /*query_seed=*/307, topt);
}

TEST(ShardedWhyNotPropertyTest, ErrorsMatchUnsharded) {
  DatasetSpec spec;
  spec.num_objects = 200;
  spec.seed = 276;
  const ObjectStore store = GenerateDataset(spec);
  const Corpus baseline = CorpusBuilder().Build(ObjectStore(store));
  const WhyNotEngine reference(baseline);
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 4));
  const WhyNotEngine engine(sharded);

  Rng rng(7);
  Query q;
  q.loc = SampleQueryLocation(store, &rng);
  q.doc = SampleQueryKeywords(store, 2, &rng);
  q.k = 5;
  // Empty missing set and out-of-range ids fail identically.
  EXPECT_FALSE(engine.Answer(q, {}).ok());
  EXPECT_FALSE(reference.Answer(q, {}).ok());
  EXPECT_FALSE(engine.Answer(q, {999999}).ok());
  EXPECT_FALSE(reference.Answer(q, {999999}).ok());
}

}  // namespace
}  // namespace yask
