#include "src/storage/object_store.h"

#include <cassert>

namespace yask {

ObjectId ObjectStore::Add(SpatialObject object) {
  const ObjectId id = static_cast<ObjectId>(objects_.size());
  assert(id != kInvalidObject);
  object.id = id;
  bounds_.Extend(object.loc);
  objects_.push_back(std::move(object));
  return id;
}

ObjectId ObjectStore::Add(Point loc, KeywordSet doc, std::string name) {
  SpatialObject o;
  o.loc = loc;
  o.doc = std::move(doc);
  o.name = std::move(name);
  return Add(std::move(o));
}

void ObjectStore::AdoptObjects(std::vector<SpatialObject> objects) {
  assert(objects_.empty());
  objects_ = std::move(objects);
  bounds_ = Rect::Empty();
  for (const SpatialObject& o : objects_) {
    assert(o.id == static_cast<ObjectId>(&o - objects_.data()));
    bounds_.Extend(o.loc);
  }
}

ObjectId ObjectStore::FindByName(const std::string& name) const {
  for (const SpatialObject& o : objects_) {
    if (o.name == name) return o.id;
  }
  return kInvalidObject;
}

double ObjectStore::BoundsDiagonal() const {
  if (bounds_.empty()) return 0.0;
  return Distance(Point{bounds_.min_x, bounds_.min_y},
                  Point{bounds_.max_x, bounds_.max_y});
}

}  // namespace yask
