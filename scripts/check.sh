#!/usr/bin/env bash
# Tier-1 verify (ROADMAP.md), end to end: configure, build, run the test
# suite. Run from anywhere; builds into <repo>/build.
#
#   scripts/check.sh            # configure + build + ctest
#   scripts/check.sh --bench    # additionally run bench_snapshot and leave
#                               # BENCH_snapshot.json in the build directory
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

run_bench=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench=1 ;;
    *) echo "usage: $0 [--bench]" >&2; exit 2 ;;
  esac
done

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc)"
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")

if [[ "$run_bench" -eq 1 ]]; then
  (cd "$build_dir" && ./bench_snapshot --json=BENCH_snapshot.json)
fi

echo "check.sh: OK"
