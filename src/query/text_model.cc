#include "src/query/text_model.h"

#include <algorithm>
#include <cmath>

namespace yask {

IdfTable::IdfTable(const ObjectStore& store)
    : corpus_size_(store.size()) {
  std::vector<size_t> df(store.vocab().size(), 0);
  for (const SpatialObject& o : store.objects()) {
    for (TermId t : o.doc) ++df[t];
  }
  idf_.resize(df.size());
  for (size_t t = 0; t < df.size(); ++t) {
    idf_[t] = df[t] == 0
                  ? 0.0
                  : std::log(1.0 + static_cast<double>(corpus_size_) /
                                       static_cast<double>(df[t]));
  }
}

double IdfTable::Norm(const KeywordSet& doc) const {
  double sum = 0.0;
  for (TermId t : doc) sum += SquaredIdf(t);
  return std::sqrt(sum);
}

double IdfTable::DotProduct(const KeywordSet& a, const KeywordSet& b) const {
  double sum = 0.0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      sum += SquaredIdf(*ia);
      ++ia;
      ++ib;
    }
  }
  return sum;
}

double CosineSimilarity(const KeywordSet& a, const KeywordSet& b,
                        const IdfTable& idf) {
  const double na = idf.Norm(a);
  const double nb = idf.Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return std::min(1.0, idf.DotProduct(a, b) / (na * nb));
}

CosineScorer::CosineScorer(const ObjectStore& store, const IdfTable& idf,
                           const Query& query)
    : store_(&store),
      idf_(&idf),
      query_(&query),
      dist_norm_(store.BoundsDiagonal()),
      query_norm_(idf.Norm(query.doc)) {}

double CosineScorer::MaxSpatialComponent(const Rect& mbr) const {
  if (dist_norm_ <= 0.0) return 1.0;
  return 1.0 - std::min(1.0, mbr.MinDistance(query_->loc) / dist_norm_);
}

TopKResult CosineTopKScan(const ObjectStore& store, const IdfTable& idf,
                          const Query& query) {
  CosineScorer scorer(store, idf, query);
  TopKResult all;
  all.reserve(store.size());
  for (const SpatialObject& o : store.objects()) {
    all.push_back(ScoredObject{o.id, scorer.Score(o)});
  }
  const size_t k = std::min<size_t>(query.k, all.size());
  std::partial_sort(all.begin(), all.begin() + k, all.end());
  all.resize(k);
  return all;
}

}  // namespace yask
