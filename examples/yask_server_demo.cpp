// The browser-server demo workflow (§3.1-§3.2, Figs. 3-5), scripted.
//
// Starts the YASK HTTP service on an ephemeral port, then plays the role of
// the client browser: issues Carol's initial query (query mode, Fig. 3),
// poses a follow-up why-not question against the cached initial query
// (why-not mode, Fig. 4), fetches the query log with the response times and
// penalties shown in Panel 5, and finally releases the cached query.
//
// The serving state is a Corpus (src/corpus/): with `--snapshot <path>` it
// boots from a snapshot file when one exists (the fast cold-start path: no
// re-indexing) and writes one after building otherwise, so the second run
// restores the warm state from disk.
//
// With `--shards N` the server instead serves an N-way partitioned
// ShardedCorpus: top-k queries AND why-not questions fan out across the
// shards in parallel through the why-not oracle seam (bit-identical
// answers), and `--snapshot <prefix>` persists/boots one file per shard.
// The scripted client below runs the same workflow in both modes.
//
// With `--remote-shards host:port,host:port,...` the server is instead a
// COORDINATOR over running `yask_shard_server` processes: it holds no
// objects or indexes itself — top-k and why-not fan out over the wire
// through the same oracle seam and answer byte-identically to the
// in-process layouts (docs/architecture.md, "Remote deployment"). Each
// comma-separated shard may be a '|'-joined REPLICA GROUP of servers booted
// from the same shard snapshot — e.g.
//   --remote-shards h:7001|h:7003,h:7002|h:7004
// for 2 shards x 2 replicas; the coordinator round-robins across healthy
// replicas and fails over mid-request when one dies, so a kill costs a
// retry, not a 503.
//
// With `--serve` the process skips the scripted client and keeps serving
// until killed, so real clients (curl, a browser) can talk to it.
//
//   $ ./yask_server_demo [--snapshot state.snap] [--serve] [--shards N]
//                        [--remote-shards host:port[|host:port...],...]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "src/common/string_util.h"
#include "src/common/timer.h"
#include "src/common/version.h"
#include "src/corpus/corpus.h"
#include "src/corpus/remote_corpus.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/shard_protocol.h"
#include "src/server/yask_service.h"
#include "src/storage/hotel_generator.h"

using namespace yask;

namespace {

JsonValue MustParse(const Result<std::string>& body) {
  if (!body.ok()) {
    std::fprintf(stderr, "http error: %s\n", body.status().ToString().c_str());
    std::exit(1);
  }
  auto parsed = JsonValue::Parse(*body);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad json: %s\n", parsed.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(parsed).value();
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path;
  std::string remote_shards;
  bool serve = false;
  bool result_cache = false;
  size_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      // Machine-readable build identity: the rolling-upgrade CI job asserts
      // every process in the fleet runs the expected sha, and operators
      // check protocol compatibility before a mixed-version cutover.
      std::printf("yask_server_demo %s shardrpc=%u..%u\n", BuildGitSha(),
                  shardrpc::kMinSupportedProtocolVersion,
                  shardrpc::kProtocolVersion);
      return 0;
    } else if (arg == "--snapshot" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--result-cache") {
      // Production read-traffic mode: repeated identical /query requests are
      // served the cached bytes (same query_id) instead of minting a fresh
      // id per request, and concurrent identical misses coalesce into one
      // fan-out. See YaskServiceOptions::enable_result_cache.
      result_cache = true;
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      if (shards == 0) shards = 1;
    } else if (arg == "--remote-shards" && i + 1 < argc) {
      remote_shards = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--snapshot <path>] [--serve] [--shards N] "
                   "[--remote-shards host:port[|host:port...],...] "
                   "[--result-cache] [--version]\n",
                   argv[0]);
      return 2;
    }
  }

  // --- Server side (Fig. 1): the corpus layer owns store + indexes. ---
  // Warm state comes from the snapshot when one exists (fast cold start);
  // otherwise it is built from the dataset and persisted for the next boot.
  // With --remote-shards there is no local state at all: the coordinator
  // connects to running yask_shard_server processes.
  std::optional<Corpus> corpus;
  std::optional<ShardedCorpus> sharded;
  std::optional<RemoteCorpus> remote;
  if (!remote_shards.empty()) {
    Timer timer;
    auto connected = RemoteCorpus::Connect(Split(remote_shards, ','));
    if (!connected.ok()) {
      std::fprintf(stderr, "cannot connect remote shards: %s\n",
                   connected.status().ToString().c_str());
      return 1;
    }
    remote = std::move(connected).value();
    std::printf(
        "connected %zu remote shard(s), %zu objects, vocab %zu in %.0f ms\n",
        remote->num_shards(), remote->size(), remote->vocab().size(),
        timer.ElapsedMillis());
    if (!remote->has_kcr()) {
      std::fprintf(stderr,
                   "warning: some remote shards lack their KcR-tree — "
                   "/whynot will answer 501 (see /health for which)\n");
    }
  } else if (shards > 1) {
    if (!snapshot_path.empty()) {
      Timer timer;
      auto loaded = ShardedCorpus::Load(snapshot_path);
      if (loaded.ok() && loaded->num_shards() == shards) {
        sharded = std::move(loaded).value();
        std::printf("loaded %zu shard snapshots %s.shard-*.snap "
                    "(%zu objects) in %.2f ms\n",
                    sharded->num_shards(), snapshot_path.c_str(),
                    sharded->size(), timer.ElapsedMillis());
      } else if (!loaded.ok() &&
                 loaded.status().code() != StatusCode::kNotFound) {
        std::fprintf(stderr, "ignoring unusable shard snapshots %s: %s\n",
                     snapshot_path.c_str(),
                     loaded.status().ToString().c_str());
      }
    }
    if (!sharded.has_value()) {
      Timer timer;
      const ObjectStore source = GenerateHotelDataset();
      sharded = ShardedCorpus::Partition(
          source, GridShardRouter::Fit(source, static_cast<uint32_t>(shards)));
      std::printf("partitioned %zu objects into %zu shards (%s) in %.2f ms\n",
                  sharded->size(), sharded->num_shards(),
                  sharded->router_description().c_str(),
                  timer.ElapsedMillis());
      if (!snapshot_path.empty()) {
        auto written = sharded->Save(snapshot_path);
        if (written.ok()) {
          std::printf("wrote %zu shard files under %s.shard-*.snap "
                      "(%zu bytes); next boot loads them\n",
                      sharded->num_shards(), snapshot_path.c_str(),
                      static_cast<size_t>(*written));
        } else {
          std::fprintf(stderr, "cannot write shard snapshots: %s\n",
                       written.status().ToString().c_str());
        }
      }
    }
  } else {
    if (!snapshot_path.empty()) {
      Timer timer;
      auto loaded = CorpusBuilder().FromSnapshot(snapshot_path);
      if (loaded.ok()) {
        corpus = std::move(loaded).value();
        std::printf("loaded snapshot %s (%zu objects) in %.2f ms\n",
                    snapshot_path.c_str(), corpus->size(),
                    timer.ElapsedMillis());
      } else if (loaded.status().code() != StatusCode::kNotFound) {
        std::fprintf(stderr, "ignoring unusable snapshot %s: %s\n",
                     snapshot_path.c_str(),
                     loaded.status().ToString().c_str());
      }
    }
    if (!corpus.has_value()) {
      Timer timer;
      corpus = CorpusBuilder().Build(GenerateHotelDataset());
      std::printf("built store + indexes in %.2f ms\n", timer.ElapsedMillis());
      if (!snapshot_path.empty()) {
        auto written = corpus->Save(snapshot_path);
        if (written.ok()) {
          std::printf("wrote snapshot %s (%zu bytes); next boot loads it\n",
                      snapshot_path.c_str(), static_cast<size_t>(*written));
        } else {
          std::fprintf(stderr, "cannot write snapshot: %s\n",
                       written.status().ToString().c_str());
        }
      }
    }
  }

  YaskServiceOptions service_options;
  service_options.snapshot_path = snapshot_path;
  service_options.enable_result_cache = result_cache;
  // The demo is a local admin playground; a production deployment would
  // leave the override off and snapshot only to its configured path.
  service_options.allow_snapshot_path_override = true;
  // Elastic-fleet admin plane: POST /admin/layout cuts the coordinator over
  // to a resharded fleet with zero downtime; POST /admin/replicas adds or
  // removes replicas of the current layout. Only meaningful (and only
  // answered with anything but 501) in --remote-shards mode.
  service_options.enable_fleet_admin = true;
  std::unique_ptr<YaskService> service;
  if (remote.has_value()) {
    service = std::make_unique<YaskService>(*remote, service_options);
  } else if (corpus.has_value()) {
    service = std::make_unique<YaskService>(*corpus, service_options);
  } else {
    service = std::make_unique<YaskService>(*sharded, service_options);
  }
  if (Status s = service->Start(); !s.ok()) {
    std::fprintf(stderr, "cannot start service: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("YASK service listening on 127.0.0.1:%u\n\n", service->port());
  // Scripts parse the port from redirected stdout; flush before the serve
  // loop never returns.
  std::fflush(stdout);

  if (serve) {
    // Plain server mode: no scripted client, just serve until killed.
    while (service->port() != 0) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    return 0;
  }

  // --- Client: initial spatial keyword top-k query (Panel 2). ---
  JsonValue query = JsonValue::MakeObject();
  query.Set("x", JsonValue(114.158));   // Clicked on the map near Central.
  query.Set("y", JsonValue(22.281));
  query.Set("keywords", JsonValue("clean comfortable"));
  query.Set("k", JsonValue(3));
  std::printf("POST /query  %s\n", query.Dump().c_str());
  const JsonValue qresp =
      MustParse(HttpFetch(service->port(), "POST", "/query", query.Dump()));
  std::printf("  -> query_id=%zu, w=<%.2f,%.2f> (server-side parameter)\n",
              static_cast<size_t>(qresp.Get("query_id").as_number()),
              qresp.Get("ws").as_number(), qresp.Get("wt").as_number());
  for (const JsonValue& row : qresp.Get("results").array_items()) {
    std::printf("  green marker: %-24s score %.4f\n",
                row.Get("name").as_string().c_str(),
                row.Get("score").as_number());
  }

  {
    // --- Client: select a missing hotel and ask why-not (Panel 3). In
    // sharded mode the question fans out over the shards and answers
    // exactly what an unsharded replica would. ---
    // Browse a wider result to find a hotel the user knows but did not see.
    JsonValue wide = query;
    wide.Set("k", JsonValue(25));
    const JsonValue wresp =
        MustParse(HttpFetch(service->port(), "POST", "/query", wide.Dump()));
    const std::string expected_name =
        wresp.Get("results").At(18).Get("name").as_string();

    JsonValue whynot = JsonValue::MakeObject();
    whynot.Set("query_id", qresp.Get("query_id"));
    JsonValue missing = JsonValue::MakeArray();
    missing.Append(JsonValue(expected_name));
    whynot.Set("missing", std::move(missing));
    whynot.Set("model", JsonValue("both"));
    whynot.Set("lambda", JsonValue(0.5));
    std::printf("\nPOST /whynot  (black marker: \"%s\")\n",
                expected_name.c_str());
    const JsonValue aresp = MustParse(
        HttpFetch(service->port(), "POST", "/whynot", whynot.Dump()));

    // Explanation panel (Fig. 5).
    const JsonValue& expl = aresp.Get("explanations").At(0);
    std::printf("  explanation: %s\n", expl.Get("text").as_string().c_str());
    std::printf(
        "  refined (preference):  ws'=%.3f k'=%zu penalty=%.4f\n",
        aresp.Get("preference").Get("ws").as_number(),
        static_cast<size_t>(aresp.Get("preference").Get("k").as_number()),
        aresp.Get("preference").Get("penalty").Get("value").as_number());
    std::printf(
        "  refined (keyword):     doc'={%s} k'=%zu penalty=%.4f\n",
        aresp.Get("keyword").Get("keywords").as_string().c_str(),
        static_cast<size_t>(aresp.Get("keyword").Get("k").as_number()),
        aresp.Get("keyword").Get("penalty").Get("value").as_number());
    std::printf("  recommended model:     %s\n",
                aresp.Get("recommended").as_string().c_str());
    std::printf("  refined result markers:\n");
    for (const JsonValue& row : aresp.Get("refined_results").array_items()) {
      const bool is_expected = row.Get("name").as_string() == expected_name;
      std::printf("    %-24s%s\n", row.Get("name").as_string().c_str(),
                  is_expected ? "  <-- revived" : "");
    }
  }

  // --- Client: the query log (Panel 5: parameters, penalty, time). ---
  std::printf("\nGET /log\n");
  const JsonValue log =
      MustParse(HttpFetch(service->port(), "GET", "/log"));
  for (const JsonValue& e : log.Get("entries").array_items()) {
    std::printf("  [%s] %.2f ms  %s%s\n", e.Get("kind").as_string().c_str(),
                e.Get("response_millis").as_number(),
                e.Get("description").as_string().c_str(),
                e.Has("penalty")
                    ? ("  penalty=" + std::to_string(
                                          e.Get("penalty").as_number()))
                          .c_str()
                    : "");
  }

  // --- Client: the observability surface. Each /log row carries the trace
  // id of the request that produced it; /trace/<id> returns that request's
  // span tree (in remote mode with the shard servers' child spans stitched
  // in), and /metrics aggregates the same stage timings fleet-wide. ---
  std::string trace_id;
  for (const JsonValue& e : log.Get("entries").array_items()) {
    if (e.Has("trace_id")) trace_id = e.Get("trace_id").as_string();
  }
  if (!trace_id.empty()) {
    std::printf("\nGET /trace/%s\n", trace_id.c_str());
    const JsonValue trace =
        MustParse(HttpFetch(service->port(), "GET", "/trace/" + trace_id));
    const auto& spans = trace.Get("spans").array_items();
    const size_t shown = std::min<size_t>(spans.size(), 12);
    for (size_t i = 0; i < shown; ++i) {
      std::printf("  %-28s %8.3f ms  [%s]\n",
                  spans[i].Get("name").as_string().c_str(),
                  spans[i].Get("duration_ms").as_number(),
                  spans[i].Get("node").as_string().c_str());
    }
    if (spans.size() > shown) {
      std::printf("  ... %zu more spans\n", spans.size() - shown);
    }
  }
  if (auto metrics = HttpFetch(service->port(), "GET", "/metrics");
      metrics.ok()) {
    std::printf("\nGET /metrics (request counters; full catalogue in "
                "docs/observability.md)\n");
    std::istringstream lines(*metrics);
    for (std::string line; std::getline(lines, line);) {
      if (line.rfind("yask_http_requests_total", 0) == 0) {
        std::printf("  %s\n", line.c_str());
      }
    }
  }

  // --- Client gives up asking why-not questions: drop the cached query. ---
  JsonValue forget = JsonValue::MakeObject();
  forget.Set("query_id", qresp.Get("query_id"));
  MustParse(HttpFetch(service->port(), "POST", "/forget", forget.Dump()));
  std::printf("\nPOST /forget -> initial query released from the cache\n");

  service->Stop();
  return 0;
}
