// Copyright (c) 2026 The YASK reproduction authors.
// ShardedCorpus: N Corpus shards partitioned by a ShardRouter, plus the
// ShardedTopKEngine that fans a query out to every shard in parallel and
// merges per-shard results into an answer bit-identical to an unsharded
// corpus's.
//
// Exactness argument (see docs/architecture.md):
//  * every shard scores with the *global* SDist normaliser (the diagonal of
//    the whole dataset's MBR) and the shared vocabulary's term ids, so a
//    given object's score is the same doubles-arithmetic in both layouts;
//  * objects enter shard stores in ascending global id order, so local id
//    order equals global id order within a shard and per-shard D6 ordering
//    is the global D6 ordering restricted to the shard;
//  * each shard returns its best min(k, |shard|) objects; the global top-k
//    is a subset of the union of those, and re-sorting the union under the
//    ScoredObject ordering (score desc, global id asc) reproduces the
//    unsharded result exactly — ties and all;
//  * execution is threshold-broadcast fan-out: the query's home shard (the
//    one whose tree MBR is nearest the query point) is searched first and
//    its k-th score is handed to the other shards as a prune threshold,
//    which only ever skips strictly-worse candidates — far shards usually
//    stop at their root, so a fan-out costs about one small-tree search.
//
// Persistence: Save() writes one snapshot file per shard (store + indexes +
// a ShardManifest section); a shard file is the shippable unit — a remote
// process can serve its shard from that file alone, and Load() reassembles
// the full ShardedCorpus from the N files.

#ifndef YASK_CORPUS_SHARDED_CORPUS_H_
#define YASK_CORPUS_SHARDED_CORPUS_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/corpus/corpus.h"
#include "src/corpus/shard_router.h"

namespace yask {

/// N-way partitioned serving state. Movable, not copyable.
class ShardedCorpus {
 public:
  /// Partitions `source` by `router` (each shard becomes a Corpus built
  /// with `options`). Shard stores share the source's vocabulary instance.
  /// The source store itself is not retained.
  static ShardedCorpus Partition(const ObjectStore& source,
                                 std::unique_ptr<ShardRouter> router,
                                 const CorpusOptions& options = {});

  ShardedCorpus(ShardedCorpus&&) = default;
  ShardedCorpus& operator=(ShardedCorpus&&) = default;

  size_t num_shards() const { return shards_.size(); }
  const Corpus& shard(size_t index) const { return shards_[index]; }

  /// Total objects across all shards.
  size_t size() const { return locate_.size(); }

  const Vocabulary& vocab() const { return shards_[0].vocab(); }

  /// MBR of the whole partitioned dataset and its diagonal — the SDist
  /// normaliser every shard engine must use (Eqn. (1) normalises by the
  /// dataset MBR, which sharding must not change).
  const Rect& bounds() const { return bounds_; }
  double dist_norm() const { return dist_norm_; }

  /// Global id of shard-local object `local` in shard `shard_index`.
  ObjectId ToGlobal(size_t shard_index, ObjectId local) const {
    return to_global_[shard_index][local];
  }
  const std::vector<ObjectId>& shard_global_ids(size_t shard_index) const {
    return to_global_[shard_index];
  }

  /// The object with a global id. Note: the returned object's `.id` field is
  /// its shard-local id; use the global id you passed for identity.
  const SpatialObject& Object(ObjectId global_id) const {
    const auto& [shard_index, local] = locate_[global_id];
    return shards_[shard_index].store().Get(local);
  }

  /// First object whose name matches, as a global id; kInvalidObject if none.
  ObjectId FindByName(const std::string& name) const;

  /// The placement policy's description ("grid 2x2 ..."); survives
  /// Save()/Load() via the manifest. The router object itself does not (it
  /// is only needed to place objects, which a loaded corpus never does).
  const std::string& router_description() const { return router_desc_; }

  /// One snapshot file per shard: ShardFilePath(prefix, i) for each i.
  /// Returns the total bytes written.
  Result<uint64_t> Save(const std::string& prefix) const;

  /// "<prefix>.shard-<index>.snap".
  static std::string ShardFilePath(const std::string& prefix, uint32_t index);

  /// The worker pool every fan-out engine over this corpus shares
  /// (ShardedTopKEngine for /query, ShardedWhyNotOracle for /whynot), sized
  /// by the CorpusOptions::fanout_threads passed to Partition()/Load() and
  /// clamped to the shard count. Created lazily on first call (thread-safe),
  /// so a corpus that is only built and saved — dataset_tool build-shards —
  /// never spins up workers. Null when fan-outs should run inline on the
  /// calling thread: single-shard corpora, and single-core hosts unless a
  /// thread count was forced.
  ThreadPool* pool() const;

  /// Reassembles a partitioned corpus from the files Save() wrote. The shard
  /// count comes from shard 0's manifest; every file's manifest is
  /// cross-checked (index, count, bounds, and that the global ids tile
  /// 0..total-1 exactly). Indexes missing from a file are rebuilt per
  /// `options`.
  static Result<ShardedCorpus> Load(const std::string& prefix,
                                    const CorpusOptions& options = {});

 private:
  ShardedCorpus() = default;

  std::vector<Corpus> shards_;
  /// Per shard: local id -> global id (strictly ascending).
  std::vector<std::vector<ObjectId>> to_global_;
  /// Global id -> (shard, local id).
  std::vector<std::pair<uint32_t, ObjectId>> locate_;
  Rect bounds_ = Rect::Empty();
  double dist_norm_ = 0.0;
  std::string router_desc_;
  std::unique_ptr<ShardRouter> router_;  // Null after Load().
  /// Lazy shared fan-out pool (see pool()); the mutex lives behind a
  /// unique_ptr to keep the corpus movable.
  size_t fanout_threads_ = 0;  // CorpusOptions::fanout_threads (0 = auto).
  std::unique_ptr<std::mutex> pool_mu_ = std::make_unique<std::mutex>();
  mutable bool pool_decided_ = false;
  mutable std::unique_ptr<ThreadPool> pool_;  // Null: fan-outs run inline.
};

/// Parallel fan-out/merge top-k over a ShardedCorpus. Results are
/// bit-identical to SetRTopKEngine over the same (unsharded) objects.
///
/// Thread-safe: concurrent Query() calls share the corpus's worker pool
/// (also used by the sharded why-not oracle — one pool per corpus, not one
/// per engine). The home shard is always searched on the calling thread;
/// without a pool the thresholded fan-out runs inline, nearest shard first.
class ShardedTopKEngine {
 public:
  explicit ShardedTopKEngine(const ShardedCorpus& corpus);

  /// Exact top-k with global object ids. Stats are summed across shards.
  TopKResult Query(const Query& query, TopKStats* stats = nullptr) const;

  const ShardedCorpus& corpus() const { return *corpus_; }

  /// The corpus's shared pool (null = inline fan-out); for the pool-reuse
  /// assertion tests.
  const ThreadPool* pool() const { return pool_; }

 private:
  const ShardedCorpus* corpus_;
  std::vector<SetRTopKEngine> engines_;  // One per shard, global dist norm.
  ThreadPool* pool_;                     // Borrowed from the corpus.
};

}  // namespace yask

#endif  // YASK_CORPUS_SHARDED_CORPUS_H_
