#include "src/server/trace_json.h"

#include <cstdio>

namespace yask {

std::string SpanIdHex(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

JsonValue TraceSpanToJson(const TraceSpan& span, const std::string& node) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("id", JsonValue(SpanIdHex(span.id)));
  out.Set("parent",
          JsonValue(span.parent == 0 ? std::string() : SpanIdHex(span.parent)));
  out.Set("name", JsonValue(span.name));
  if (!span.detail.empty()) out.Set("detail", JsonValue(span.detail));
  out.Set("start_ms", JsonValue(span.start_ms));
  out.Set("duration_ms", JsonValue(span.duration_ms));
  out.Set("node", JsonValue(node));
  return out;
}

JsonValue TraceSpansToJson(const std::vector<TraceSpan>& spans,
                           const std::string& node) {
  JsonValue arr = JsonValue::MakeArray();
  for (const TraceSpan& span : spans) arr.Append(TraceSpanToJson(span, node));
  return arr;
}

JsonValue StoredTraceToJson(const TraceStore::Stored& stored,
                            const std::string& node) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("trace_id", JsonValue(stored.trace_id));
  out.Set("total_ms", JsonValue(stored.total_ms));
  out.Set("pinned", JsonValue(stored.pinned));
  out.Set("spans", TraceSpansToJson(stored.spans, node));
  return out;
}

}  // namespace yask
