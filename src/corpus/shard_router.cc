#include "src/corpus/shard_router.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace yask {

namespace {

/// Splits `sorted` into `parts` equi-count runs and returns the values at
/// the run boundaries (parts - 1 of them): boundary b is the last value of
/// run b, so "value <= boundary" selects runs 0..b.
std::vector<double> QuantileCuts(const std::vector<double>& sorted,
                                 size_t parts) {
  std::vector<double> cuts;
  if (parts <= 1 || sorted.empty()) return cuts;
  cuts.reserve(parts - 1);
  const size_t base = sorted.size() / parts;
  const size_t extra = sorted.size() % parts;
  size_t end = 0;
  for (size_t p = 0; p + 1 < parts; ++p) {
    end += base + (p < extra ? 1 : 0);
    // end == 0 only when a run is empty (more parts than objects); reuse the
    // smallest value so the boundary stays monotone.
    cuts.push_back(sorted[end == 0 ? 0 : end - 1]);
  }
  return cuts;
}

}  // namespace

std::unique_ptr<GridShardRouter> GridShardRouter::Fit(const ObjectStore& store,
                                                      uint32_t num_shards) {
  auto router = std::unique_ptr<GridShardRouter>(new GridShardRouter());
  const uint32_t n = std::max(1u, num_shards);
  router->num_shards_ = n;

  const uint32_t cols = static_cast<uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  // Cells per column: sizes differ by at most one and sum to n.
  std::vector<uint32_t> rows(cols, n / cols);
  for (uint32_t c = 0; c < n % cols; ++c) ++rows[c];

  std::vector<double> xs;
  xs.reserve(store.size());
  for (const SpatialObject& o : store.objects()) xs.push_back(o.loc.x);
  std::sort(xs.begin(), xs.end());
  router->col_upper_x_ = QuantileCuts(xs, cols);

  // Per column, the y-values of the objects it routes to (by the x cuts).
  std::vector<std::vector<double>> ys(cols);
  for (const SpatialObject& o : store.objects()) {
    const size_t col = std::upper_bound(router->col_upper_x_.begin(),
                                        router->col_upper_x_.end(), o.loc.x) -
                       router->col_upper_x_.begin();
    ys[col].push_back(o.loc.y);
  }

  router->cell_upper_y_.resize(cols);
  router->col_offset_.resize(cols);
  uint32_t offset = 0;
  for (uint32_t c = 0; c < cols; ++c) {
    std::sort(ys[c].begin(), ys[c].end());
    router->cell_upper_y_[c] = QuantileCuts(ys[c], rows[c]);
    router->col_offset_[c] = offset;
    offset += rows[c];
  }
  return router;
}

uint32_t GridShardRouter::Route(const Point& loc) const {
  const size_t col = std::upper_bound(col_upper_x_.begin(), col_upper_x_.end(),
                                      loc.x) -
                     col_upper_x_.begin();
  const std::vector<double>& cuts = cell_upper_y_[col];
  const size_t row =
      std::upper_bound(cuts.begin(), cuts.end(), loc.y) - cuts.begin();
  return col_offset_[col] + static_cast<uint32_t>(row);
}

std::string GridShardRouter::Describe() const {
  return "grid " + std::to_string(col_offset_.size()) + " cols, " +
         std::to_string(num_shards_) + " cells";
}

uint32_t HashShardRouter::Route(const Point& loc) const {
  // FNV-1a over the raw coordinate bits: deterministic across processes
  // (std::hash is not guaranteed to be).
  uint64_t bits[2];
  static_assert(sizeof(bits) == 2 * sizeof(double));
  std::memcpy(&bits[0], &loc.x, sizeof(double));
  std::memcpy(&bits[1], &loc.y, sizeof(double));
  uint64_t h = 1469598103934665603ull;
  for (const uint64_t word : bits) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (word >> (byte * 8)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return static_cast<uint32_t>(h % num_shards_);
}

std::string HashShardRouter::Describe() const {
  return "hash " + std::to_string(num_shards_);
}

}  // namespace yask
