#include "src/query/topk_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

struct EngineFixtureParam {
  size_t n;
  uint64_t seed;
  SpatialDistribution dist;
};

/// All engines must return exactly what the reference scan returns, for a
/// sweep of dataset shapes, ks and weights (experiment E2's correctness leg).
class TopKEngineAgreement
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(TopKEngineAgreement, AllEnginesMatchScan) {
  const auto [n, seed] = GetParam();
  DatasetSpec spec;
  spec.num_objects = n;
  spec.seed = seed;
  spec.vocabulary_size = 80;
  const ObjectStore store = GenerateDataset(spec);

  SetRTree setr(&store);
  setr.BulkLoad();
  RTree rtree(&store);
  rtree.BulkLoad();
  InvertedIndex inverted(store);

  SetRTopKEngine engine(store, setr);
  InvertedTopKEngine baseline(store, inverted, rtree);

  Rng rng(seed ^ 0x5EED);
  for (uint32_t k : {1u, 5u, 10u, 50u}) {
    for (int trial = 0; trial < 5; ++trial) {
      Query q;
      q.loc = SampleQueryLocation(store, &rng);
      q.doc = SampleQueryKeywords(store, 1 + rng.NextBounded(4), &rng);
      q.k = k;
      q.w = Weights::FromWs(rng.NextDouble(0.1, 0.9));

      const TopKResult expected = TopKScan(store, q);
      const TopKResult got_setr = engine.Query(q);
      const TopKResult got_inv = baseline.Query(q);
      ASSERT_EQ(got_setr.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got_setr[i].id, expected[i].id)
            << "SetR engine rank " << i << " (k=" << k << ")";
        EXPECT_DOUBLE_EQ(got_setr[i].score, expected[i].score);
      }
      ASSERT_EQ(got_inv.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got_inv[i].id, expected[i].id)
            << "inverted engine rank " << i << " (k=" << k << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopKEngineAgreement,
    ::testing::Combine(::testing::Values(50, 500, 3000),
                       ::testing::Values(1, 42, 777)));

TEST(TopKEngineTest, KLargerThanDatasetReturnsEverything) {
  DatasetSpec spec;
  spec.num_objects = 20;
  const ObjectStore store = GenerateDataset(spec);
  SetRTree setr(&store);
  setr.BulkLoad();
  SetRTopKEngine engine(store, setr);
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0});
  q.k = 100;
  const TopKResult r = engine.Query(q);
  EXPECT_EQ(r.size(), 20u);
  EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
}

TEST(TopKEngineTest, ResultsSortedAndDeterministic) {
  DatasetSpec spec;
  spec.num_objects = 1000;
  const ObjectStore store = GenerateDataset(spec);
  SetRTree setr(&store);
  setr.BulkLoad();
  SetRTopKEngine engine(store, setr);
  Query q;
  q.loc = Point{0.4, 0.6};
  q.doc = KeywordSet({0, 1, 2});
  q.k = 25;
  const TopKResult a = engine.Query(q);
  const TopKResult b = engine.Query(q);
  EXPECT_EQ(a.size(), 25u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
}

TEST(TopKEngineTest, TieBreakingByIdUnderUniformScores) {
  // All objects identical => scores all equal => ids 0..k-1 win.
  ObjectStore store;
  store.mutable_vocab()->Intern("x");
  for (int i = 0; i < 40; ++i) store.Add(Point{0.5, 0.5}, KeywordSet({0}));
  SetRTree setr(&store);
  setr.BulkLoad();
  SetRTopKEngine engine(store, setr);
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({0});
  q.k = 5;
  const TopKResult r = engine.Query(q);
  ASSERT_EQ(r.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(r[i].id, i);
}

TEST(TopKEngineTest, PrunesNodesComparedToScan) {
  DatasetSpec spec;
  spec.num_objects = 20000;
  spec.vocabulary_size = 500;
  const ObjectStore store = GenerateDataset(spec);
  SetRTree setr(&store);
  setr.BulkLoad();
  SetRTopKEngine engine(store, setr);
  // A selective query (rare keywords): most subtrees have a zero textual
  // upper bound and die on the spatial bound alone.
  Query q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet({400, 450});
  q.k = 10;
  TopKStats stats;
  engine.Query(q, &stats);
  EXPECT_LT(stats.objects_scored, store.size() / 4);
}

TEST(TopKEngineTest, SpatialOnlyWinnersSurfaceInInvertedBaseline) {
  // An object sharing no query keyword but sitting on the query point must
  // still win when ws is large (phase 2 of the hybrid baseline).
  ObjectStore store;
  Vocabulary* v = store.mutable_vocab();
  const TermId match = v->Intern("match");
  const TermId other = v->Intern("other");
  store.Add(Point{1.0, 1.0}, KeywordSet({match}), "far-match");
  store.Add(Point{0.0, 0.0}, KeywordSet({other}), "near-nomatch");
  RTree rtree(&store);
  rtree.BulkLoad();
  InvertedIndex inverted(store);
  InvertedTopKEngine baseline(store, inverted, rtree);

  Query q;
  q.loc = Point{0.0, 0.0};
  q.doc = KeywordSet({match});
  q.k = 1;
  q.w = Weights::FromWs(0.9);
  const TopKResult r = baseline.Query(q);
  ASSERT_EQ(r.size(), 1u);
  // score(near-nomatch) = 0.9 * 1 = 0.9; score(far-match) = 0.1 * 1 = 0.1.
  EXPECT_EQ(r[0].id, 1u);
  EXPECT_EQ(r[0], TopKScan(store, q)[0]);
}

TEST(TopKEngineTest, EmptyStore) {
  ObjectStore store;
  SetRTree setr(&store);
  setr.BulkLoad();
  SetRTopKEngine engine(store, setr);
  Query q;
  q.doc = KeywordSet({0});
  q.k = 3;
  EXPECT_TRUE(engine.Query(q).empty());
}

}  // namespace
}  // namespace yask
