#include "src/server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "src/common/string_util.h"
#include "src/common/timer.h"
#include "src/server/http_client.h"
#include "src/server/json.h"

namespace yask {

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  return HttpResponse{status, "application/json",
                      "{\"error\":" + JsonEscape(message) + "}"};
}

namespace {

/// Hard limits the shard endpoints rely on between nodes: a peer cannot make
/// the server buffer unbounded header or body bytes.
constexpr size_t kMaxHeaderBytes = 1u << 20;
constexpr size_t kMaxBodyBytes = 32u << 20;
/// How long a request/response may stall mid-transfer before the connection
/// drops (a peer dripping bytes — or refusing to read its response — cannot
/// hold its buffers forever).
constexpr int kRequestStallMs = 10000;
/// epoll_wait timeout: how often the loop sweeps deadlines with no traffic.
constexpr int kSweepTickMs = 100;

/// epoll user-data tags for the two non-connection fds.
constexpr uint64_t kListenTag = 1;
constexpr uint64_t kWakeTag = 2;

enum class ParseResult {
  kNeedMore,        // Buffered bytes don't hold a full request yet.
  kComplete,        // One full request parsed (and consumed from the buffer).
  kMalformed,       // Unparseable framing: answer 400 and drop.
  kHeadersTooLarge, // Header block over the limit: answer 431 and drop.
  kBodyTooLarge,    // Declared Content-Length over the limit: 413 and drop.
};

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

std::string SerializeResponse(const HttpResponse& resp, bool close_after) {
  std::ostringstream out;
  out << "HTTP/1.1 " << resp.status << ' ' << StatusText(resp.status)
      << "\r\nContent-Type: " << resp.content_type
      << "\r\nContent-Length: " << resp.body.size() << "\r\nConnection: "
      << (close_after ? "close" : "keep-alive") << "\r\n\r\n" << resp.body;
  return out.str();
}

}  // namespace

/// Per-connection state, owned by the event loop thread. While a request is
/// with a worker (kProcessing) the connection's epoll events are masked off;
/// the worker hands back a serialised response via the completion queue and
/// never touches this struct.
struct HttpServer::Conn {
  enum class State { kReading, kProcessing, kWriting };

  int fd = -1;
  uint64_t id = 0;
  State state = State::kReading;
  std::string in;     // Buffered request bytes (may hold pipelined extras).
  std::string out;    // Response bytes being written.
  size_t out_off = 0;
  bool close_after = false;
  /// Peer hung up while a worker held its request: the fd has been
  /// deregistered from epoll (HUP/ERR cannot be masked and would otherwise
  /// spin the loop) and the connection is closed when the completion lands.
  bool doomed = false;
  int64_t idle_since = 0;  // Last activity; drives the idle sweep.
  int64_t deadline = 0;    // Stall deadline for the transfer in flight; 0 off.

  // Incremental parse state: the header block is located and parsed ONCE,
  // and the terminator search only covers newly appended bytes — a 32 MiB
  // body must not rescan the buffer per chunk.
  size_t scanned = 0;
  size_t header_end = std::string::npos;
  size_t content_length = 0;
  bool have_length = false;
  std::string request_line;
  std::string connection_hdr;
  std::map<std::string, std::string> headers;

  void ResetParse() {
    scanned = 0;
    header_end = std::string::npos;
    content_length = 0;
    have_length = false;
    request_line.clear();
    connection_hdr.clear();
    headers.clear();
  }

  /// Tries to parse one full request (header block + Content-Length body)
  /// off `in`. On kComplete the request's bytes are consumed from the buffer
  /// (pipelined leftovers stay) and the parse state is reset for the next.
  ParseResult TryParse(HttpRequest* req, bool* keep_alive);
};

ParseResult HttpServer::Conn::TryParse(HttpRequest* req, bool* keep_alive) {
  Conn* c = this;
  std::string* buffer = &c->in;
  if (c->header_end == std::string::npos && buffer->size() > c->scanned) {
    // Resume the terminator search 3 bytes back: "\r\n\r\n" may straddle
    // the previous chunk boundary.
    const size_t from = c->scanned < 3 ? 0 : c->scanned - 3;
    c->header_end = buffer->find("\r\n\r\n", from);
    c->scanned = buffer->size();
    if (c->header_end != std::string::npos) {
      std::istringstream hs(buffer->substr(0, c->header_end));
      std::string line;
      std::getline(hs, line);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      c->request_line = line;
      while (std::getline(hs, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        const std::string lower = ToLowerAscii(line);
        if (StartsWith(lower, "content-length:")) {
          uint64_t v = 0;
          if (ParseUint64(Trim(line.substr(15)), &v)) {
            c->content_length = static_cast<size_t>(v);
            c->have_length = true;
          }
        } else if (StartsWith(lower, "connection:")) {
          c->connection_hdr = Trim(lower.substr(11));
        }
        const size_t colon = line.find(':');
        if (colon != std::string::npos && colon > 0) {
          c->headers[ToLowerAscii(line.substr(0, colon))] =
              Trim(line.substr(colon + 1));
        }
      }
      if (c->content_length > kMaxBodyBytes) return ParseResult::kBodyTooLarge;
    } else if (buffer->size() > kMaxHeaderBytes) {
      return ParseResult::kHeadersTooLarge;
    }
  }

  if (c->header_end == std::string::npos) return ParseResult::kNeedMore;
  const size_t body_have = buffer->size() - (c->header_end + 4);
  if (c->have_length && body_have < c->content_length) {
    return ParseResult::kNeedMore;
  }

  // Request line: METHOD SP TARGET SP VERSION.
  std::vector<std::string> parts = SplitWhitespace(c->request_line);
  if (parts.size() < 2) return ParseResult::kMalformed;
  *req = HttpRequest{};
  req->method = parts[0];
  std::string target = parts[1];
  const size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    const std::string qs = target.substr(qpos + 1);
    target = target.substr(0, qpos);
    for (const std::string& kv : Split(qs, '&')) {
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        req->query_params[UrlDecode(kv)] = "";
      } else {
        req->query_params[UrlDecode(kv.substr(0, eq))] =
            UrlDecode(kv.substr(eq + 1));
      }
    }
  }
  req->path = UrlDecode(target);
  req->headers = std::move(c->headers);
  const size_t body_len = c->have_length ? c->content_length : 0;
  req->body = buffer->substr(c->header_end + 4, body_len);
  buffer->erase(0, c->header_end + 4 + body_len);
  // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
  const bool http11 = parts.size() < 3 || parts[2] == "HTTP/1.1";
  *keep_alive = http11 ? c->connection_hdr != "close"
                       : c->connection_hdr == "keep-alive";
  c->ResetParse();
  return ParseResult::kComplete;
}

HttpServer::HttpServer(uint16_t port, size_t num_workers,
                       int keep_alive_idle_ms)
    : port_(port),
      num_workers_(num_workers == 0 ? 1 : num_workers),
      keep_alive_idle_ms_(keep_alive_idle_ms < 500 ? 500
                                                   : keep_alive_idle_ms) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& method, const std::string& path,
                       Handler handler) {
  routes_[{method, path}] = std::move(handler);
}

void HttpServer::RoutePrefix(const std::string& method,
                             const std::string& prefix, Handler handler) {
  prefix_routes_[{method, prefix}] = std::move(handler);
}

Status HttpServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("bind() failed: " +
                               std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 256) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("listen() failed");
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("epoll_create1()/eventfd() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true);
  loop_exit_.store(false);
  loop_thread_ = std::thread(&HttpServer::EventLoop, this);
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back(&HttpServer::WorkerLoop, this);
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // The loop closes the listener as soon as it observes running_ == false
  // (the next wake), releasing the port before Stop() returns.
  Wake();
  // Abandon the queued backlog — serving it would make Stop() latency
  // unbounded under load — and let each worker finish only the request it
  // already holds. Their final completions still land in done_, which the
  // loop flushes before tearing the connections down.
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks_.clear();
  }
  task_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  loop_exit_.store(true);
  Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
}

void HttpServer::Wake() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void HttpServer::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(task_mu_);
      task_cv_.wait(lock, [&] { return !tasks_.empty() || !running_.load(); });
      // On Stop(), exit even with requests still queued: Stop() cleared the
      // backlog and the loop closes their connections unserved.
      if (!running_.load()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    HttpResponse resp = Dispatch(task.req);
    const bool close_after = !task.keep_alive;
    Completion completion{task.conn_id, SerializeResponse(resp, close_after),
                          close_after};
    {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_.push_back(std::move(completion));
    }
    Wake();
  }
}

HttpResponse HttpServer::Dispatch(const HttpRequest& req) const {
  auto it = routes_.find({req.method, req.path});
  if (it != routes_.end()) return it->second(req);
  // Longest matching prefix wins (the map iterates shortest first).
  const Handler* prefix_handler = nullptr;
  size_t best_len = 0;
  for (const auto& [key, handler] : prefix_routes_) {
    if (key.first == req.method && req.path.size() > key.second.size() &&
        req.path.compare(0, key.second.size(), key.second) == 0 &&
        key.second.size() >= best_len) {
      best_len = key.second.size();
      prefix_handler = &handler;
    }
  }
  if (prefix_handler != nullptr) return (*prefix_handler)(req);
  // Distinguish an unknown resource from a known one addressed with the
  // wrong method.
  bool path_known = false;
  for (const auto& [key, handler] : routes_) {
    if (key.second == req.path) {
      path_known = true;
      break;
    }
  }
  for (const auto& [key, handler] : prefix_routes_) {
    if (!path_known && req.path.size() > key.second.size() &&
        req.path.compare(0, key.second.size(), key.second) == 0) {
      path_known = true;
    }
  }
  return path_known ? HttpResponse::Error(405, "method not allowed")
                    : HttpResponse::Error(404, "no such endpoint");
}

void HttpServer::EventLoop() {
  std::vector<epoll_event> events(128);
  while (true) {
    if (!running_.load() && listen_fd_ >= 0) {
      // Stop() in progress: release the port now (closing deregisters the
      // fd from epoll); in-flight requests keep draining below.
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (loop_exit_.load()) break;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), kSweepTickMs);
    FlushCompletions();
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        AcceptReady();
      } else if (tag == kWakeTag) {
        uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
      } else {
        auto it = conns_.find(tag);
        if (it == conns_.end()) continue;
        Conn* c = it->second.get();
        if (c->state == Conn::State::kProcessing) {
          // A worker owns this request; the fd's events are masked, but
          // HUP/ERR cannot be masked and are level-triggered — left
          // registered, a dead peer would wake epoll_wait on every
          // iteration and busy-spin the loop for the whole handler run.
          // Deregister and let the completion path discard the response.
          if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 && !c->doomed) {
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
            c->doomed = true;
          }
          continue;
        }
        const uint32_t ev = events[i].events;
        bool alive = true;
        if ((ev & (EPOLLHUP | EPOLLERR)) != 0 &&
            (ev & (EPOLLIN | EPOLLOUT)) == 0) {
          alive = false;
        } else if (c->state == Conn::State::kReading && (ev & EPOLLIN) != 0) {
          alive = ReadReady(c);
        } else if (c->state == Conn::State::kWriting &&
                   (ev & EPOLLOUT) != 0) {
          alive = ContinueWrite(c);
        } else if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
          alive = false;
        }
        if (!alive) CloseConn(tag);
      }
    }
    SweepDeadlines();
  }
  // Teardown: flush the workers' final responses (best-effort — sockets are
  // nonblocking, whatever doesn't fit is dropped), then close everything.
  FlushCompletions();
  for (auto& [id, c] : conns_) {
    ::shutdown(c->fd, SHUT_RDWR);
    ::close(c->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::close(wake_fd_);
  wake_fd_ = -1;
  ::close(epoll_fd_);
  epoll_fd_ = -1;
}

void HttpServer::AcceptReady() {
  while (running_.load()) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;  // EAGAIN (drained) or a transient error.
    // TCP_NODELAY matters because the remote-shard RPC path rides many small
    // request/response pairs on one connection.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto c = std::make_unique<Conn>();
    c->fd = fd;
    c->id = next_conn_id_++;
    c->idle_since = NowMillis();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = c->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(c->id, std::move(c));
  }
}

void HttpServer::FlushCompletions() {
  std::deque<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    batch.swap(done_);
  }
  for (Completion& completion : batch) {
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // Peer vanished while processing.
    Conn* c = it->second.get();
    if (c->doomed) {
      // Peer hung up mid-handler; its fd is already out of epoll. There is
      // nobody to write to — drop the response with the connection.
      CloseConn(completion.conn_id);
      continue;
    }
    if (!StartWrite(c, std::move(completion.bytes), completion.close_after)) {
      CloseConn(completion.conn_id);
    }
  }
}

void HttpServer::SweepDeadlines() {
  const int64_t now = NowMillis();
  std::vector<uint64_t> doomed;
  for (auto& [id, c] : conns_) {
    switch (c->state) {
      case Conn::State::kProcessing:
        break;  // Handler time is the service's business, not the loop's.
      case Conn::State::kReading:
        if (c->deadline != 0) {
          // Mid-request: a stalled/dripping transfer drops on its deadline.
          if (now >= c->deadline) doomed.push_back(id);
        } else if (now - c->idle_since >= keep_alive_idle_ms_) {
          // Between requests: the idle sweep. These connections never held
          // a worker, so a burst of abandoned peers costs only memory —
          // reaped here so even that is bounded.
          doomed.push_back(id);
          idle_reaped_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      case Conn::State::kWriting:
        if (c->deadline != 0 && now >= c->deadline) doomed.push_back(id);
        break;
    }
  }
  for (const uint64_t id : doomed) CloseConn(id);
}

void HttpServer::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::close(it->second->fd);  // Closing deregisters the fd from epoll.
  conns_.erase(it);
}

bool HttpServer::ReadReady(Conn* c) {
  char buf[16384];
  while (true) {
    const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (c->deadline == 0) c->deadline = NowMillis() + kRequestStallMs;
      c->in.append(buf, static_cast<size_t>(n));
      c->idle_since = NowMillis();
      // Let the parser reject an oversized header block before buffering
      // arbitrarily more of it.
      if (c->header_end == std::string::npos &&
          c->in.size() > kMaxHeaderBytes) {
        break;
      }
      continue;
    }
    if (n == 0) return false;  // EOF.
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  return AdvanceRead(c);
}

bool HttpServer::AdvanceRead(Conn* c) {
  HttpRequest req;
  bool keep_alive = false;
  switch (c->TryParse(&req, &keep_alive)) {
    case ParseResult::kNeedMore:
      if (c->in.empty()) {
        c->deadline = 0;  // Between requests: only the idle sweep applies.
      } else if (c->deadline == 0) {
        c->deadline = NowMillis() + kRequestStallMs;
      }
      return true;
    case ParseResult::kComplete: {
      // Hand the request to a worker; mask the fd until the response is on
      // its way (pipelined followers in c->in wait their turn — responses
      // must go out in request order).
      c->state = Conn::State::kProcessing;
      c->deadline = 0;
      epoll_event ev{};
      ev.events = 0;
      ev.data.u64 = c->id;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
      {
        std::lock_guard<std::mutex> lock(task_mu_);
        tasks_.push_back(Task{c->id, std::move(req), keep_alive});
      }
      task_cv_.notify_one();
      return true;
    }
    case ParseResult::kMalformed:
      return DirectError(c, 400, "bad request");
    case ParseResult::kHeadersTooLarge:
      return DirectError(c, 431, "header block too large");
    case ParseResult::kBodyTooLarge:
      return DirectError(c, 413, "request body too large");
  }
  return false;
}

bool HttpServer::DirectError(Conn* c, int status, const std::string& message) {
  // Framing violations are answered from the loop itself — no worker, and
  // always Connection: close (the byte stream is no longer trustworthy).
  return StartWrite(
      c, SerializeResponse(HttpResponse::Error(status, message), true), true);
}

bool HttpServer::StartWrite(Conn* c, std::string bytes, bool close_after) {
  c->state = Conn::State::kWriting;
  c->out = std::move(bytes);
  c->out_off = 0;
  c->close_after = close_after;
  c->deadline = NowMillis() + kRequestStallMs;
  return ContinueWrite(c);
}

bool HttpServer::ContinueWrite(Conn* c) {
  while (c->out_off < c->out.size()) {
    const ssize_t n = ::send(c->fd, c->out.data() + c->out_off,
                             c->out.size() - c->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c->out_off += static_cast<size_t>(n);
      c->idle_since = NowMillis();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Peer can't take more yet: wait for write-readiness.
      epoll_event ev{};
      ev.events = EPOLLOUT;
      ev.data.u64 = c->id;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // Peer gone; a partial response cannot be resumed.
  }
  if (c->close_after) return false;
  // Response fully written: back to reading (the buffer may already hold the
  // next pipelined request).
  c->state = Conn::State::kReading;
  c->out.clear();
  c->out_off = 0;
  c->idle_since = NowMillis();
  c->deadline = c->in.empty() ? 0 : NowMillis() + kRequestStallMs;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = c->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
  return AdvanceRead(c);
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += s[i] == '+' ? ' ' : s[i];
  }
  return out;
}

Result<std::string> HttpFetch(uint16_t port, const std::string& method,
                              const std::string& path_and_query,
                              const std::string& body, int* status_out) {
  // One connect + one Call of the persistent client, closed on return —
  // exactly one implementation of HTTP response framing in the tree.
  HttpClientConnection conn;
  if (Status s = conn.Connect("127.0.0.1", port, /*timeout_ms=*/5000);
      !s.ok()) {
    return s;
  }
  return conn.Call(method, path_and_query, body, /*deadline_ms=*/30000,
                   status_out);
}

}  // namespace yask
