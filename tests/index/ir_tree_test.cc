#include "src/index/ir_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

TEST(IdfTableTest, HandComputed) {
  ObjectStore store;
  Vocabulary* v = store.mutable_vocab();
  const TermId common = v->Intern("common");
  const TermId rare = v->Intern("rare");
  // 4 docs: "common" in all, "rare" in one.
  store.Add(Point{0, 0}, KeywordSet({common}));
  store.Add(Point{0, 1}, KeywordSet({common}));
  store.Add(Point{1, 0}, KeywordSet({common}));
  store.Add(Point{1, 1}, KeywordSet({common, rare}));
  IdfTable idf(store);
  EXPECT_DOUBLE_EQ(idf.Idf(common), std::log(1.0 + 4.0 / 4.0));
  EXPECT_DOUBLE_EQ(idf.Idf(rare), std::log(1.0 + 4.0 / 1.0));
  EXPECT_GT(idf.Idf(rare), idf.Idf(common));
  EXPECT_DOUBLE_EQ(idf.Idf(999), 0.0);  // Unseen term.
  EXPECT_EQ(idf.corpus_size(), 4u);
}

TEST(IdfTableTest, NormAndDotProduct) {
  ObjectStore store;
  Vocabulary* v = store.mutable_vocab();
  const TermId a = v->Intern("a");
  const TermId b = v->Intern("b");
  store.Add(Point{0, 0}, KeywordSet({a}));
  store.Add(Point{0, 1}, KeywordSet({a, b}));
  IdfTable idf(store);
  const double ia = idf.Idf(a);
  const double ib = idf.Idf(b);
  EXPECT_DOUBLE_EQ(idf.Norm(KeywordSet({a, b})),
                   std::sqrt(ia * ia + ib * ib));
  EXPECT_DOUBLE_EQ(idf.DotProduct(KeywordSet({a, b}), KeywordSet({b})),
                   ib * ib);
  EXPECT_DOUBLE_EQ(idf.Norm(KeywordSet()), 0.0);
}

TEST(CosineSimilarityTest, RangeAndIdentity) {
  ObjectStore store;
  Vocabulary* v = store.mutable_vocab();
  const TermId a = v->Intern("a");
  const TermId b = v->Intern("b");
  const TermId c = v->Intern("c");
  store.Add(Point{0, 0}, KeywordSet({a, b}));
  store.Add(Point{0, 1}, KeywordSet({b, c}));
  store.Add(Point{1, 1}, KeywordSet({c}));
  IdfTable idf(store);
  const KeywordSet x({a, b});
  EXPECT_DOUBLE_EQ(CosineSimilarity(x, x, idf), 1.0);  // Self-similarity.
  EXPECT_DOUBLE_EQ(CosineSimilarity(x, KeywordSet({c}), idf), 0.0);
  const double sim = CosineSimilarity(x, KeywordSet({b, c}), idf);
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(x, KeywordSet(), idf), 0.0);
}

TEST(CosineSimilarityTest, RareTermsDominate) {
  // Sharing a rare term should beat sharing a common term.
  ObjectStore store;
  Vocabulary* v = store.mutable_vocab();
  const TermId common = v->Intern("common");
  const TermId rare = v->Intern("rare");
  const TermId other = v->Intern("other");
  for (int i = 0; i < 50; ++i) store.Add(Point{0, 0}, KeywordSet({common}));
  store.Add(Point{0, 0}, KeywordSet({rare}));
  store.Add(Point{0, 0}, KeywordSet({other}));
  IdfTable idf(store);
  const KeywordSet q({common, rare});
  EXPECT_GT(CosineSimilarity(KeywordSet({rare, other}), q, idf),
            CosineSimilarity(KeywordSet({common, other}), q, idf));
}

ObjectStore MakeStore(size_t n, uint64_t seed = 42) {
  DatasetSpec spec;
  spec.num_objects = n;
  spec.seed = seed;
  spec.vocabulary_size = 80;
  return GenerateDataset(spec);
}

TEST(IrTreeTest, BulkLoadValidates) {
  const ObjectStore store = MakeStore(2000);
  IdfTable idf(store);
  IrTree tree(&store, {}, IrSummary::WithIdf(&idf));
  tree.BulkLoad();
  Status s = tree.Validate();
  ASSERT_TRUE(s.ok()) << s.ToString();
}

TEST(IrTreeTest, InsertDeleteKeepSummaries) {
  const ObjectStore store = MakeStore(500, 9);
  IdfTable idf(store);
  IrTree tree(&store, {}, IrSummary::WithIdf(&idf));
  for (ObjectId id = 0; id < 500; ++id) tree.Insert(id);
  ASSERT_TRUE(tree.Validate().ok());
  for (ObjectId id = 0; id < 500; id += 4) ASSERT_TRUE(tree.Delete(id));
  Status s = tree.Validate();
  ASSERT_TRUE(s.ok()) << s.ToString();
}

class IrBoundProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IrBoundProperty, CosineScoreBoundIsAdmissible) {
  const ObjectStore store = MakeStore(1500, GetParam());
  IdfTable idf(store);
  IrTree tree(&store, {}, IrSummary::WithIdf(&idf));
  tree.BulkLoad();
  Rng rng(GetParam() * 3 + 1);
  for (int trial = 0; trial < 15; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 1 + rng.NextBounded(4), &rng);
    q.k = 5;
    q.w = Weights::FromWs(rng.NextDouble(0.1, 0.9));
    CosineScorer scorer(store, idf, q);

    std::vector<IrTree::NodeId> stack{tree.root()};
    while (!stack.empty()) {
      const auto& node = tree.node(stack.back());
      stack.pop_back();
      const double ub =
          UpperBoundCosineScore(scorer, node.rect, node.summary);
      if (node.is_leaf) {
        for (const auto& e : node.entries) {
          EXPECT_LE(scorer.Score(e.id), ub + 1e-12)
              << "IR-tree bound violated at object " << e.id;
        }
      } else {
        for (const auto& e : node.entries) stack.push_back(e.id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrBoundProperty, ::testing::Values(4, 19, 55));

class IrEngineAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IrEngineAgreement, MatchesCosineScan) {
  const ObjectStore store = MakeStore(1200, GetParam());
  IdfTable idf(store);
  IrTree tree(&store, {}, IrSummary::WithIdf(&idf));
  tree.BulkLoad();
  IrTopKEngine engine(store, idf, tree);
  Rng rng(GetParam() ^ 0xC0C0);
  for (int trial = 0; trial < 10; ++trial) {
    Query q;
    q.loc = SampleQueryLocation(store, &rng);
    q.doc = SampleQueryKeywords(store, 1 + rng.NextBounded(3), &rng);
    q.k = 1 + static_cast<uint32_t>(rng.NextBounded(20));
    q.w = Weights::FromWs(rng.NextDouble(0.1, 0.9));
    const TopKResult expected = CosineTopKScan(store, idf, q);
    const TopKResult got = engine.Query(q);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id) << "rank " << i;
      EXPECT_DOUBLE_EQ(got[i].score, expected[i].score);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrEngineAgreement,
                         ::testing::Values(6, 27, 91));

TEST(IrTreeTest, EmptyDocObjectsHandled) {
  ObjectStore store;
  const TermId kw = store.mutable_vocab()->Intern("w");
  store.Add(Point{0.5, 0.5}, KeywordSet({kw}), "texty");
  store.Add(Point{0.4, 0.4}, KeywordSet(), "mute");
  IdfTable idf(store);
  IrTree tree(&store, {}, IrSummary::WithIdf(&idf));
  tree.BulkLoad();
  ASSERT_TRUE(tree.Validate().ok());
  IrTopKEngine engine(store, idf, tree);
  Query q;
  q.loc = Point{0.4, 0.4};
  q.doc = KeywordSet({kw});
  q.k = 2;
  const TopKResult r = engine.Query(q);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r, CosineTopKScan(store, idf, q));
}

}  // namespace
}  // namespace yask
