// Copyright (c) 2026 The YASK reproduction authors.
// A small fixed-size worker pool for query fan-out.
//
// The sharded top-k engine dispatches one best-first search per shard for
// every query; spawning threads per query would cost more than the searches
// themselves, so the pool keeps its workers alive for the lifetime of the
// engine. Submit() is thread-safe — the HTTP workers of YaskService call
// into the same pool concurrently; callers join a fan-out with std::latch.

#ifndef YASK_COMMON_THREAD_POOL_H_
#define YASK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace yask {

/// Fixed-size worker pool. Tasks run in submission order across the workers;
/// the destructor drains every queued task before joining (so submitted work
/// never silently disappears — callers waiting on a latch always wake).
class ThreadPool {
 public:
  /// `num_threads` is clamped to at least 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe. Must not be called after destruction has
  /// begun (the engine owns both the pool and every submitter).
  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace yask

#endif  // YASK_COMMON_THREAD_POOL_H_
