#include "src/common/keyword_set.h"

#include <algorithm>

namespace yask {

KeywordSet::KeywordSet(std::vector<TermId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

KeywordSet::KeywordSet(std::initializer_list<TermId> ids)
    : KeywordSet(std::vector<TermId>(ids)) {}

KeywordSet KeywordSet::FromSortedUnique(std::vector<TermId> ids) {
  KeywordSet set;
  set.ids_ = std::move(ids);
  return set;
}

void KeywordSet::Insert(TermId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) return;
  ids_.insert(it, id);
}

bool KeywordSet::Erase(TermId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return false;
  ids_.erase(it);
  return true;
}

bool KeywordSet::Contains(TermId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

size_t KeywordSet::IntersectionSize(const KeywordSet& other) const {
  const std::vector<TermId>* small = &ids_;
  const std::vector<TermId>* large = &other.ids_;
  if (small->size() > large->size()) std::swap(small, large);
  // Asymmetric sets (a 3-keyword query against a node union of hundreds):
  // probing the small set into the large one beats the linear merge.
  if (small->size() * 8 < large->size()) {
    size_t count = 0;
    for (TermId t : *small) {
      count += std::binary_search(large->begin(), large->end(), t) ? 1 : 0;
    }
    return count;
  }
  size_t count = 0;
  auto a = small->begin();
  auto b = large->begin();
  while (a != small->end() && b != large->end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

size_t KeywordSet::UnionSize(const KeywordSet& other) const {
  return size() + other.size() - IntersectionSize(other);
}

double KeywordSet::Jaccard(const KeywordSet& other) const {
  const size_t inter = IntersectionSize(other);
  const size_t uni = size() + other.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

KeywordSet KeywordSet::Union(const KeywordSet& a, const KeywordSet& b) {
  std::vector<TermId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.ids_.begin(), a.ids_.end(), b.ids_.begin(), b.ids_.end(),
                 std::back_inserter(out));
  KeywordSet result;
  result.ids_ = std::move(out);  // Already sorted and unique.
  return result;
}

KeywordSet KeywordSet::Intersection(const KeywordSet& a, const KeywordSet& b) {
  std::vector<TermId> out;
  std::set_intersection(a.ids_.begin(), a.ids_.end(), b.ids_.begin(),
                        b.ids_.end(), std::back_inserter(out));
  KeywordSet result;
  result.ids_ = std::move(out);
  return result;
}

KeywordSet KeywordSet::Difference(const KeywordSet& a, const KeywordSet& b) {
  std::vector<TermId> out;
  std::set_difference(a.ids_.begin(), a.ids_.end(), b.ids_.begin(),
                      b.ids_.end(), std::back_inserter(out));
  KeywordSet result;
  result.ids_ = std::move(out);
  return result;
}

size_t KeywordSet::EditDistance(const KeywordSet& a, const KeywordSet& b) {
  const size_t inter = a.IntersectionSize(b);
  return (a.size() - inter) + (b.size() - inter);
}

bool KeywordSet::IsSubsetOf(const KeywordSet& other) const {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

std::string KeywordSet::ToString(const Vocabulary& vocab) const {
  std::string out;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i) out += ' ';
    out += vocab.Word(ids_[i]);
  }
  return out;
}

size_t KeywordSetHash::operator()(const KeywordSet& s) const {
  // FNV-1a over the id stream.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (TermId id : s.ids()) {
    h ^= id;
    h *= 0x100000001B3ULL;
  }
  return static_cast<size_t>(h);
}

}  // namespace yask
