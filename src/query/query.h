// Copyright (c) 2026 The YASK reproduction authors.
// Query types for spatial keyword top-k queries (§2.1, Definition 1).

#ifndef YASK_QUERY_QUERY_H_
#define YASK_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/geometry.h"
#include "src/common/keyword_set.h"
#include "src/common/status.h"
#include "src/storage/object.h"

namespace yask {

/// The preference vector w = <ws, wt> between spatial proximity and textual
/// similarity (Eqn. (1)); the paper requires 0 < ws, wt < 1 and ws + wt = 1.
struct Weights {
  double ws = 0.5;
  double wt = 0.5;

  /// Weights from the spatial component only (wt = 1 - ws).
  static Weights FromWs(double ws) { return Weights{ws, 1.0 - ws}; }

  /// L2 distance between weight vectors; the ∆w of penalty Eqn. (3).
  double DistanceTo(const Weights& other) const;

  /// The ∆w normaliser of Eqn. (3): sqrt(1 + ws^2 + wt^2).
  double PenaltyNormalizer() const;

  bool operator==(const Weights& other) const = default;
};

/// A spatial keyword top-k query q = (q.loc, q.doc, k, w).
struct Query {
  Point loc;
  KeywordSet doc;
  uint32_t k = 10;
  Weights w;

  /// Validates the paper's constraints: k >= 1, 0 < ws,wt < 1, ws + wt = 1
  /// (within fp tolerance), non-empty keyword set.
  Status Validate() const;

  std::string ToString(const Vocabulary& vocab) const;
};

/// One result row: an object and its score under the issuing query.
struct ScoredObject {
  ObjectId id = kInvalidObject;
  double score = 0.0;

  /// Result order: score descending, id ascending (deterministic ties, D6).
  friend bool operator<(const ScoredObject& a, const ScoredObject& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  }
  bool operator==(const ScoredObject& other) const = default;
};

/// A top-k result: at most k objects in result order.
using TopKResult = std::vector<ScoredObject>;

}  // namespace yask

#endif  // YASK_QUERY_QUERY_H_
