// Experiment E13: the remote shard tier over loopback.
//
// Boots 1/2/4 ShardService instances (the yask_shard_server core) over a
// partitioned benchmark dataset, connects a RemoteCorpus coordinator, and
// runs the /query + /whynot workload through the wire — measuring what the
// network hop costs and what the batched oracle calls buy back.
//
// Exactness gates (non-zero exit on any failure, like bench_sharded):
//   * every remote top-k result and why-not answer must be BIT-identical to
//     the unsharded reference engine (which PR 2/3 already gate against the
//     in-process sharded layout);
//   * batched keyword adaption must issue exactly one probe-refine fan-out
//     per refinement level (stats.probe_fanouts == stats.refine_levels);
//   * per question, the batched search must spend no more wire round-trips
//     than the per-probe search it replaces;
//   * the batched Eqn. (3) sweep (segment CountAboveBatch fan-outs) must
//     return the byte-same refinement with identical crossing/candidate
//     counters as the per-event sweep, in no more round-trips per question.
//
// The headline numbers: HTTP round-trips per why-not answer, before and
// after batching — for the Eqn. (4) probes (KeywordAdaptOptions::
// batch_probes) and the Eqn. (3) weight sweep (PreferenceAdjustOptions::
// batch_sweep) — the quantity that dominates remote why-not latency once
// shards leave the coordinator's address space.
//
//   $ ./bench_remote_shards [--n=50000] [--queries=40] [--questions=10]
//                           [--json=BENCH_remote_shards.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/corpus/remote_corpus.h"
#include "src/corpus/remote_whynot_oracle.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/json.h"
#include "src/server/shard_service.h"
#include "src/whynot/why_not_engine.h"

namespace yask {
namespace bench {
namespace {

struct Question {
  Query query;
  std::vector<ObjectId> missing;
};

std::vector<Query> MakeQueryWorkload(const ObjectStore& store, size_t count) {
  Rng rng(kDatasetSeed + 7);
  std::vector<Query> queries;
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(MakeQuery(store, &rng, /*num_keywords=*/3, /*k=*/10));
  }
  return queries;
}

std::vector<Question> MakeWhyNotWorkload(const ObjectStore& store,
                                         size_t count) {
  Rng rng(kDatasetSeed + 3);
  std::vector<Question> questions;
  while (questions.size() < count) {
    Question q;
    q.query = MakeQuery(store, &rng, /*num_keywords=*/3, /*k=*/10);
    q.missing = PickMissing(store, q.query, 1 + questions.size() % 2,
                            /*offset=*/4);
    if (q.missing.empty()) continue;
    questions.push_back(std::move(q));
  }
  return questions;
}

bool SameRefinement(const RefinedKeywordQuery& a,
                    const RefinedKeywordQuery& b) {
  return a.refined.doc.ids() == b.refined.doc.ids() &&
         a.refined.k == b.refined.k && a.penalty.value == b.penalty.value &&
         a.original_rank == b.original_rank &&
         a.refined_rank == b.refined_rank &&
         a.already_in_result == b.already_in_result;
}

bool SameAnswer(const WhyNotAnswer& a, const WhyNotAnswer& b) {
  if (a.explanations.size() != b.explanations.size()) return false;
  for (size_t i = 0; i < a.explanations.size(); ++i) {
    if (a.explanations[i].id != b.explanations[i].id ||
        a.explanations[i].rank != b.explanations[i].rank ||
        a.explanations[i].score != b.explanations[i].score ||
        a.explanations[i].text != b.explanations[i].text) {
      return false;
    }
  }
  if (a.preference.has_value() != b.preference.has_value()) return false;
  if (a.preference.has_value() &&
      (a.preference->refined.w.ws != b.preference->refined.w.ws ||
       a.preference->refined.k != b.preference->refined.k ||
       a.preference->penalty.value != b.preference->penalty.value)) {
    return false;
  }
  if (a.keyword.has_value() != b.keyword.has_value()) return false;
  if (a.keyword.has_value() && !SameRefinement(*a.keyword, *b.keyword)) {
    return false;
  }
  if (a.recommended != b.recommended) return false;
  if (a.refined_result.size() != b.refined_result.size()) return false;
  for (size_t i = 0; i < a.refined_result.size(); ++i) {
    if (!(a.refined_result[i] == b.refined_result[i])) return false;
  }
  return true;
}

struct ShardFleet {
  std::vector<std::unique_ptr<ShardService>> services;
  std::vector<std::string> endpoints;

  explicit ShardFleet(const ShardedCorpus& corpus) {
    for (size_t s = 0; s < corpus.num_shards(); ++s) {
      ShardService::Info info;
      info.shard_index = static_cast<uint32_t>(s);
      info.shard_count = static_cast<uint32_t>(corpus.num_shards());
      info.global_bounds = corpus.bounds();
      info.dist_norm = corpus.dist_norm();
      info.to_global = corpus.shard_global_ids(s);
      info.router = corpus.router_description();
      services.push_back(
          std::make_unique<ShardService>(corpus.shard(s), std::move(info)));
      if (!services.back()->Start().ok()) {
        std::fprintf(stderr, "cannot start shard service %zu\n", s);
        std::exit(1);
      }
      endpoints.push_back("127.0.0.1:" +
                          std::to_string(services.back()->port()));
    }
  }
  ~ShardFleet() {
    for (auto& service : services) service->Stop();
  }
};

struct RemoteRun {
  size_t shards = 0;
  double topk_ms_per_query = 0.0;
  double whynot_ms_per_question = 0.0;
  double batched_rt_per_question = 0.0;    // Round-trips, keyword adaption.
  double perprobe_rt_per_question = 0.0;
  double sweep_batched_rt_per_question = 0.0;  // Round-trips, Eqn. (3) sweep.
  double sweep_perevent_rt_per_question = 0.0;
  bool exact = true;
  bool fanout_gate = true;  // probe_fanouts == refine_levels (batched).
  bool batching_gate = true;  // batched round-trips <= per-probe.
  bool sweep_gate = true;  // batched sweep round-trips <= per-event.
};

bool SamePreference(const RefinedPreferenceQuery& a,
                    const RefinedPreferenceQuery& b) {
  return a.refined.w.ws == b.refined.w.ws && a.refined.k == b.refined.k &&
         a.penalty.value == b.penalty.value &&
         a.original_rank == b.original_rank &&
         a.refined_rank == b.refined_rank &&
         a.already_in_result == b.already_in_result &&
         a.stats.crossings_found == b.stats.crossings_found &&
         a.stats.candidates_evaluated == b.stats.candidates_evaluated;
}

}  // namespace
}  // namespace bench
}  // namespace yask

int main(int argc, char** argv) {
  using namespace yask;
  using namespace yask::bench;

  size_t n = 50000;
  size_t num_queries = 40;
  size_t num_questions = 10;
  std::string json_path = "BENCH_remote_shards.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<size_t>(std::strtoull(arg.c_str() + 4, nullptr, 10));
    } else if (arg.rfind("--queries=", 0) == 0) {
      num_queries =
          static_cast<size_t>(std::strtoull(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--questions=", 0) == 0) {
      num_questions =
          static_cast<size_t>(std::strtoull(arg.c_str() + 12, nullptr, 10));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(
          stderr, "usage: %s [--n=N] [--queries=Q] [--questions=W] "
          "[--json=PATH]\n",
          argv[0]);
      return 2;
    }
  }

  Timer setup_timer;
  const Corpus baseline =
      CorpusBuilder().Build(GenerateDataset(SharedDatasetSpec(n)));
  const ObjectStore& store = baseline.store();
  const WhyNotEngine reference(baseline);
  const std::vector<Query> queries = MakeQueryWorkload(store, num_queries);
  const std::vector<Question> questions =
      MakeWhyNotWorkload(store, num_questions);
  std::printf("built unsharded corpus (n=%zu) in %.0f ms; %zu queries, %zu "
              "why-not questions\n",
              n, setup_timer.ElapsedMillis(), queries.size(),
              questions.size());

  // Reference answers (already gated sharded==unsharded by E11/E12).
  std::vector<TopKResult> expected_topk;
  for (const Query& q : queries) expected_topk.push_back(reference.TopK(q));
  std::vector<WhyNotAnswer> expected_answers;
  for (const Question& q : questions) {
    auto answer = reference.Answer(q.query, q.missing);
    if (!answer.ok()) {
      std::fprintf(stderr, "reference why-not failed: %s\n",
                   answer.status().ToString().c_str());
      return 1;
    }
    expected_answers.push_back(std::move(answer).value());
  }

  std::printf("%-10s %10s %12s %14s %14s %15s %16s  %s\n", "shards",
              "topk ms/q", "whynot ms/q", "kw rt batched", "kw rt perprobe",
              "sweep rt batched", "sweep rt perevent", "gates");
  std::vector<RemoteRun> runs;
  for (const size_t shards : {1, 2, 4}) {
    const ShardedCorpus sharded = ShardedCorpus::Partition(
        store, GridShardRouter::Fit(store, static_cast<uint32_t>(shards)));
    ShardFleet fleet(sharded);
    auto connected = RemoteCorpus::Connect(fleet.endpoints);
    if (!connected.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   connected.status().ToString().c_str());
      return 1;
    }
    const RemoteCorpus remote = std::move(connected).value();
    const RemoteShardOracle oracle(remote);
    const WhyNotEngine engine(std::make_unique<RemoteShardOracle>(remote));

    RemoteRun run;
    run.shards = shards;

    // (a) Remote top-k over the wire, gated bit-identical.
    {
      Timer timer;
      for (size_t i = 0; i < queries.size(); ++i) {
        const TopKResult result = engine.TopK(queries[i]);
        if (result != expected_topk[i]) run.exact = false;
      }
      run.topk_ms_per_query = timer.ElapsedMillis() / queries.size();
    }

    // (b) Full why-not answers over the wire, gated bit-identical.
    {
      Timer timer;
      for (size_t i = 0; i < questions.size(); ++i) {
        auto answer = engine.Answer(questions[i].query, questions[i].missing);
        if (!answer.ok() || !SameAnswer(*answer, expected_answers[i])) {
          run.exact = false;
        }
      }
      run.whynot_ms_per_question = timer.ElapsedMillis() / questions.size();
    }

    // (c) The round-trip meter: keyword adaption with the batched seam vs
    // the per-probe seam it replaces, both over the wire, both gated to the
    // same refined query.
    uint64_t batched_rt = 0;
    uint64_t perprobe_rt = 0;
    for (const Question& q : questions) {
      KeywordAdaptOptions batched;
      batched.batch_probes = true;
      KeywordAdaptOptions perprobe;
      perprobe.batch_probes = false;

      uint64_t before = remote.total_requests();
      auto rb = AdaptKeywords(oracle, q.query, q.missing, batched);
      const uint64_t rb_rt = remote.total_requests() - before;
      before = remote.total_requests();
      auto rp = AdaptKeywords(oracle, q.query, q.missing, perprobe);
      const uint64_t rp_rt = remote.total_requests() - before;
      batched_rt += rb_rt;
      perprobe_rt += rp_rt;

      if (!rb.ok() || !rp.ok() || !SameRefinement(*rb, *rp)) {
        run.exact = false;
        continue;
      }
      auto local = AdaptKeywords(baseline.store(), baseline.kcr(), q.query,
                                 q.missing);
      if (!local.ok() || !SameRefinement(*rb, *local)) run.exact = false;
      // One fan-out per refinement level — the batching contract.
      if (rb->stats.probe_fanouts != rb->stats.refine_levels) {
        run.fanout_gate = false;
      }
      if (rb_rt > rp_rt) run.batching_gate = false;
    }
    run.batched_rt_per_question =
        static_cast<double>(batched_rt) / questions.size();
    run.perprobe_rt_per_question =
        static_cast<double>(perprobe_rt) / questions.size();

    // (d) The Eqn. (3) sweep round-trip meter: the speculative segment sweep
    // (CountAboveBatch, one /shard/plane/count_batch per segment) vs the
    // per-event sweep it replaces (one /shard/plane/count per candidate
    // weight per anchor), both over the wire, both gated to the byte-same
    // refinement with identical crossing/candidate counters.
    uint64_t sweep_batched_rt = 0;
    uint64_t sweep_perevent_rt = 0;
    for (const Question& q : questions) {
      PreferenceAdjustOptions batched;
      batched.batch_sweep = true;
      PreferenceAdjustOptions perevent;
      perevent.batch_sweep = false;

      uint64_t before = remote.total_requests();
      auto rb = AdjustPreference(oracle, q.query, q.missing, batched);
      const uint64_t rb_rt = remote.total_requests() - before;
      before = remote.total_requests();
      auto rp = AdjustPreference(oracle, q.query, q.missing, perevent);
      const uint64_t rp_rt = remote.total_requests() - before;
      sweep_batched_rt += rb_rt;
      sweep_perevent_rt += rp_rt;

      if (!rb.ok() || !rp.ok() || !SamePreference(*rb, *rp)) {
        run.exact = false;
        continue;
      }
      auto local = AdjustPreference(baseline.store(), q.query, q.missing,
                                    perevent);
      if (!local.ok() || !SamePreference(*rb, *local)) run.exact = false;
      if (rb_rt > rp_rt) run.sweep_gate = false;
    }
    run.sweep_batched_rt_per_question =
        static_cast<double>(sweep_batched_rt) / questions.size();
    run.sweep_perevent_rt_per_question =
        static_cast<double>(sweep_perevent_rt) / questions.size();

    std::printf(
        "%-10zu %10.2f %12.2f %14.1f %14.1f %15.1f %16.1f  %s%s%s%s\n",
        shards, run.topk_ms_per_query, run.whynot_ms_per_question,
        run.batched_rt_per_question, run.perprobe_rt_per_question,
        run.sweep_batched_rt_per_question, run.sweep_perevent_rt_per_question,
        run.exact ? "exact" : "EXACTNESS BUG",
        run.fanout_gate ? "" : " FANOUT BUG",
        run.batching_gate ? "" : " BATCHING BUG",
        run.sweep_gate ? "" : " SWEEP BUG");
    runs.push_back(run);
  }

  bool all_ok = true;
  for (const RemoteRun& r : runs) {
    all_ok = all_ok && r.exact && r.fanout_gate && r.batching_gate &&
             r.sweep_gate;
  }

  JsonValue context = JsonValue::MakeObject();
  context.Set("bench", JsonValue("remote_shards"));
  context.Set("n", JsonValue(n));
  context.Set("queries", JsonValue(queries.size()));
  context.Set("questions", JsonValue(questions.size()));
  context.Set("host_hardware_concurrency",
              JsonValue(static_cast<size_t>(
                  std::thread::hardware_concurrency())));
  context.Set("transport",
              JsonValue("loopback HTTP, keep-alive, binary shard protocol"));
  context.Set("results_match", JsonValue(all_ok));
  if (!runs.empty()) {
    const RemoteRun& last = runs.back();
    context.Set("kw_roundtrips_batched_4_shards",
                JsonValue(last.batched_rt_per_question));
    context.Set("kw_roundtrips_perprobe_4_shards",
                JsonValue(last.perprobe_rt_per_question));
    context.Set(
        "kw_roundtrip_reduction_4_shards",
        JsonValue(last.batched_rt_per_question > 0.0
                      ? last.perprobe_rt_per_question /
                            last.batched_rt_per_question
                      : 0.0));
    context.Set("sweep_roundtrips_batched_4_shards",
                JsonValue(last.sweep_batched_rt_per_question));
    context.Set("sweep_roundtrips_perevent_4_shards",
                JsonValue(last.sweep_perevent_rt_per_question));
    context.Set(
        "sweep_roundtrip_reduction_4_shards",
        JsonValue(last.sweep_batched_rt_per_question > 0.0
                      ? last.sweep_perevent_rt_per_question /
                            last.sweep_batched_rt_per_question
                      : 0.0));
  }

  JsonValue benches = JsonValue::MakeArray();
  auto bench_row = [&](const std::string& name, double value,
                       const std::string& unit) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("name", JsonValue(name));
    row.Set("run_type", JsonValue("iteration"));
    row.Set("iterations", JsonValue(static_cast<size_t>(1)));
    row.Set("real_time", JsonValue(value));
    row.Set("cpu_time", JsonValue(value));
    row.Set("time_unit", JsonValue(unit));
    benches.Append(std::move(row));
  };
  const std::string suffix = "/" + std::to_string(n);
  for (const RemoteRun& r : runs) {
    const std::string tag = "/shards:" + std::to_string(r.shards) + suffix;
    bench_row("remote_shards/topk" + tag, r.topk_ms_per_query, "ms");
    bench_row("remote_shards/whynot" + tag, r.whynot_ms_per_question, "ms");
    bench_row("remote_shards/kw_roundtrips_batched" + tag,
              r.batched_rt_per_question, "roundtrips");
    bench_row("remote_shards/kw_roundtrips_perprobe" + tag,
              r.perprobe_rt_per_question, "roundtrips");
    bench_row("remote_shards/sweep_roundtrips_batched" + tag,
              r.sweep_batched_rt_per_question, "roundtrips");
    bench_row("remote_shards/sweep_roundtrips_perevent" + tag,
              r.sweep_perevent_rt_per_question, "roundtrips");
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("context", std::move(context));
  doc.Set("benchmarks", std::move(benches));
  std::ofstream out(json_path, std::ios::trunc);
  out << doc.Dump() << "\n";
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  // Gate hard: a remote tier that answers differently, or that quietly
  // regresses to per-probe round-trips, must fail the run.
  return all_ok ? 0 : 1;
}
