// Experiment E12: distributed why-not over the rank-oracle seam.
//
// Partitions the shared benchmark dataset into 1/2/4 spatial-grid shards
// (KcR-trees included — keyword adaption runs on them) and answers the same
// randomized why-not workload through WhyNotEngine over each ShardedCorpus.
// Every sharded answer is cross-checked field-by-field against the
// unsharded WhyNotEngine — explanations, both refined queries, the
// recommendation and the refined result order must be bit-identical, so a
// fast-but-wrong merge fails the run (non-zero exit) rather than entering
// the perf trajectory.
//
// Two timings per configuration (the bench_sharded discipline):
//   * wall      — WhyNotEngine::Answer on this host as-is (parallel over the
//                 corpus pool when the host has cores, inline when not).
//   * scatter   — the scatter-gather deployment model: every shard runs its
//                 slice of each oracle fan-out concurrently on its own
//                 core/node, so per-question latency is the MAX of the
//                 per-shard busy times plus everything that is coordinator
//                 work (candidate enumeration, penalty arithmetic, merges).
//                 Per-shard busy time is measured per fan-out task through
//                 the oracle's instrumentation hook; no parallel hardware is
//                 required. On a 1-core CI host this is the number that
//                 reflects what the oracle seam buys a real deployment; on
//                 a multicore host `wall` converges toward it.
//
// The speedup_4_shards_vs_1 context key reports the scatter model
// (speedup_metric records that); wall speedups are reported alongside.
//
//   $ ./bench_whynot_sharded [--n=100000] [--questions=16]
//                            [--json=BENCH_whynot_sharded.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/metrics.h"
#include "src/common/timer.h"
#include "src/common/trace.h"
#include "src/corpus/sharded_corpus.h"
#include "src/corpus/sharded_whynot_oracle.h"
#include "src/server/json.h"
#include "src/whynot/why_not_engine.h"

namespace yask {
namespace bench {
namespace {

constexpr int kReps = 2;  // Best-of for each timed workload pass.

struct Question {
  Query query;
  std::vector<ObjectId> missing;
};

struct ShardRun {
  size_t shards = 0;
  double wall_ms = 0.0;     // Best-of-kReps wall for the whole workload.
  double scatter_ms = 0.0;  // Sum over questions of the scatter-gather model.
  bool results_match = true;
};

std::vector<Question> MakeWorkload(const ObjectStore& store, size_t count) {
  Rng rng(kDatasetSeed + 2);
  std::vector<Question> questions;
  while (questions.size() < count) {
    Question q;
    q.query = MakeQuery(store, &rng, /*num_keywords=*/3, /*k=*/10);
    q.missing = PickMissing(store, q.query, 1 + questions.size() % 2,
                            /*offset=*/4);
    if (q.missing.empty()) continue;
    questions.push_back(std::move(q));
  }
  return questions;
}

bool SamePenalty(const PenaltyBreakdown& a, const PenaltyBreakdown& b) {
  return a.value == b.value && a.k_term == b.k_term &&
         a.mod_term == b.mod_term && a.delta_k == b.delta_k &&
         a.delta_w == b.delta_w && a.delta_doc == b.delta_doc;
}

/// Strict equality of everything /whynot exposes: any divergence is a merge
/// bug, not noise.
bool AnswersEqual(const WhyNotAnswer& a, const WhyNotAnswer& b) {
  if (a.explanations.size() != b.explanations.size()) return false;
  for (size_t i = 0; i < a.explanations.size(); ++i) {
    const MissingObjectExplanation& x = a.explanations[i];
    const MissingObjectExplanation& y = b.explanations[i];
    if (x.id != y.id || x.rank != y.rank || x.score != y.score ||
        x.sdist != y.sdist || x.tsim != y.tsim || x.kth_score != y.kth_score ||
        x.reason != y.reason || x.recommendation != y.recommendation ||
        x.text != y.text) {
      return false;
    }
  }
  if (a.preference.has_value() != b.preference.has_value()) return false;
  if (a.preference.has_value()) {
    const RefinedPreferenceQuery& x = *a.preference;
    const RefinedPreferenceQuery& y = *b.preference;
    if (x.refined.w.ws != y.refined.w.ws || x.refined.k != y.refined.k ||
        x.original_rank != y.original_rank ||
        x.refined_rank != y.refined_rank ||
        x.already_in_result != y.already_in_result ||
        !SamePenalty(x.penalty, y.penalty)) {
      return false;
    }
  }
  if (a.keyword.has_value() != b.keyword.has_value()) return false;
  if (a.keyword.has_value()) {
    const RefinedKeywordQuery& x = *a.keyword;
    const RefinedKeywordQuery& y = *b.keyword;
    if (x.refined.doc.ids() != y.refined.doc.ids() ||
        x.refined.k != y.refined.k || x.original_rank != y.original_rank ||
        x.refined_rank != y.refined_rank ||
        x.already_in_result != y.already_in_result ||
        !SamePenalty(x.penalty, y.penalty)) {
      return false;
    }
  }
  if (a.recommended != b.recommended) return false;
  if (a.refined_result.size() != b.refined_result.size()) return false;
  for (size_t i = 0; i < a.refined_result.size(); ++i) {
    if (!(a.refined_result[i] == b.refined_result[i])) return false;
  }
  return true;
}

}  // namespace
}  // namespace bench
}  // namespace yask

int main(int argc, char** argv) {
  using namespace yask;
  using namespace yask::bench;

  size_t n = 100000;
  size_t num_questions = 16;
  std::string json_path = "BENCH_whynot_sharded.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<size_t>(std::strtoull(arg.c_str() + 4, nullptr, 10));
    } else if (arg.rfind("--questions=", 0) == 0) {
      num_questions =
          static_cast<size_t>(std::strtoull(arg.c_str() + 12, nullptr, 10));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n=N] [--questions=Q] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // The unsharded baseline engine and the reference answers. The shared
  // bench corpus skips the KcR-tree, so this harness builds its own.
  Timer setup_timer;
  const Corpus baseline =
      CorpusBuilder().Build(GenerateDataset(SharedDatasetSpec(n)));
  const ObjectStore& store = baseline.store();
  const WhyNotEngine reference(baseline);
  const std::vector<Question> workload = MakeWorkload(store, num_questions);
  std::printf("built unsharded corpus (n=%zu, KcR included) in %.0f ms\n", n,
              setup_timer.ElapsedMillis());

  std::vector<WhyNotAnswer> expected;
  expected.reserve(workload.size());
  double baseline_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    expected.clear();
    Timer timer;
    for (const Question& q : workload) {
      auto answer = reference.Answer(q.query, q.missing);
      if (!answer.ok()) {
        std::fprintf(stderr, "reference why-not failed: %s\n",
                     answer.status().ToString().c_str());
        return 1;
      }
      expected.push_back(std::move(answer).value());
    }
    baseline_ms = std::min(baseline_ms, timer.ElapsedMillis());
  }

  std::printf(
      "n=%zu objects, %zu why-not questions (k=10, 3 keywords, |M|=1..2), "
      "host cores=%u\n",
      n, workload.size(), std::thread::hardware_concurrency());
  std::printf("%-16s %11s %9s %11s %9s  %s\n", "engine", "wall ms/q",
              "wall q/s", "scatter ms", "sct q/s", "exact");
  std::printf("%-16s %11.2f %9.1f %11s %9s  %s\n", "unsharded",
              baseline_ms / workload.size(),
              1000.0 * workload.size() / baseline_ms, "-", "-", "ref");

  std::vector<ShardRun> runs;
  for (const size_t shards : {1, 2, 4}) {
    Timer partition_timer;
    const ShardedCorpus sharded = ShardedCorpus::Partition(
        store, GridShardRouter::Fit(store, static_cast<uint32_t>(shards)));
    const double partition_ms = partition_timer.ElapsedMillis();

    // The engine under test, with the scatter-model instrumentation wired
    // into its oracle before the engine takes ownership.
    std::vector<double> busy(sharded.num_shards(), 0.0);
    auto oracle = std::make_unique<ShardedWhyNotOracle>(sharded);
    ShardedWhyNotOracle* oracle_handle = oracle.get();
    const WhyNotEngine engine(std::move(oracle));

    ShardRun run;
    run.shards = shards;
    // Warm-up pass doubling as the correctness gate: every question must
    // reproduce the unsharded answer bit-for-bit.
    for (size_t i = 0; i < workload.size(); ++i) {
      auto answer = engine.Answer(workload[i].query, workload[i].missing);
      if (!answer.ok() || !AnswersEqual(*answer, expected[i])) {
        run.results_match = false;
      }
    }

    // (a) Wall time of the fan-out engine on this host.
    run.wall_ms = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      Timer timer;
      for (const Question& q : workload) {
        auto answer = engine.Answer(q.query, q.missing);
        if (!answer.ok()) run.results_match = false;
      }
      run.wall_ms = std::min(run.wall_ms, timer.ElapsedMillis());
    }

    // (b) Scatter-gather model: per-question latency = the slowest shard's
    // accumulated fan-out busy time plus the coordinator remainder (wall
    // minus ALL shard busy time, clamped — on a multicore host fan-out
    // overlap can push the raw remainder below zero). The busy-time hook is
    // not safe under concurrent oracle calls, so stage overlap is off for
    // this arm (the model sums per-stage busy time anyway).
    WhyNotOptions scatter_options;
    scatter_options.overlap_stages = false;
    oracle_handle->set_shard_busy_ms(&busy);
    run.scatter_ms = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      double total = 0.0;
      for (const Question& q : workload) {
        std::fill(busy.begin(), busy.end(), 0.0);
        Timer timer;
        auto answer = engine.Answer(q.query, q.missing, scatter_options);
        const double wall = timer.ElapsedMillis();
        if (!answer.ok()) run.results_match = false;
        double busy_sum = 0.0;
        double busy_max = 0.0;
        for (double b : busy) {
          busy_sum += b;
          busy_max = std::max(busy_max, b);
        }
        total += busy_max + std::max(0.0, wall - busy_sum);
      }
      run.scatter_ms = std::min(run.scatter_ms, total);
    }
    oracle_handle->set_shard_busy_ms(nullptr);
    runs.push_back(run);

    std::printf("%-16s %11.2f %9.1f %11.2f %9.1f  %s  (partition %.0f ms)\n",
                ("sharded/" + std::to_string(shards)).c_str(),
                run.wall_ms / workload.size(),
                1000.0 * workload.size() / run.wall_ms,
                run.scatter_ms / workload.size(),
                1000.0 * workload.size() / run.scatter_ms,
                run.results_match ? "yes" : "NO — BUG", partition_ms);
  }

  const ShardRun* one = nullptr;
  const ShardRun* four = nullptr;
  for (const ShardRun& r : runs) {
    if (r.shards == 1) one = &r;
    if (r.shards == 4) four = &r;
  }
  const double scatter_speedup =
      (one != nullptr && four != nullptr) ? one->scatter_ms / four->scatter_ms
                                          : 0.0;
  const double wall_speedup =
      (one != nullptr && four != nullptr) ? one->wall_ms / four->wall_ms : 0.0;
  std::printf(
      "\n4-shard vs 1-shard refinement throughput: %.2fx scatter-gather "
      "model, %.2fx wall on this %u-core host\n",
      scatter_speedup, wall_speedup, std::thread::hardware_concurrency());

  bool all_match = true;
  for (const ShardRun& r : runs) all_match = all_match && r.results_match;

  // --- Observability overhead gate: the same workload with the full
  // service-side instrumentation active (a TraceRecorder installed, every
  // span harvested into yask_stage_ms) vs. bare. Each question is timed
  // back-to-back in both arms and the per-question best-of-reps is kept:
  // min filters scheduler spikes PER QUESTION, so the two floors compare
  // the arms rather than the machine's mood. Must stay under 2%. ---
  constexpr int kOverheadReps = 5;
  constexpr double kMaxOverheadPct = 2.0;
  MetricsRegistry overhead_metrics;
  std::vector<double> best_bare(workload.size(), 1e300);
  std::vector<double> best_traced(workload.size(), 1e300);
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    for (size_t i = 0; i < workload.size(); ++i) {
      const Question& q = workload[i];
      {
        Timer timer;
        auto answer = reference.Answer(q.query, q.missing);
        if (!answer.ok()) all_match = false;
        best_bare[i] = std::min(best_bare[i], timer.ElapsedMillis());
      }
      {
        Timer timer;
        TraceRecorder recorder(MintTraceId());
        {
          TraceContextScope scope(TraceContext{&recorder, 0});
          ScopedSpan span("POST /whynot");
          auto answer = reference.Answer(q.query, q.missing);
          if (!answer.ok()) all_match = false;
        }
        for (const TraceSpan& s : recorder.TakeSpans()) {
          overhead_metrics.GetHistogram("yask_stage_ms", {{"stage", s.name}})
              ->Observe(s.duration_ms);
        }
        best_traced[i] = std::min(best_traced[i], timer.ElapsedMillis());
      }
    }
  }
  double bare_ms = 0.0;
  double traced_ms = 0.0;
  for (size_t i = 0; i < workload.size(); ++i) {
    bare_ms += best_bare[i];
    traced_ms += best_traced[i];
  }
  const double overhead_pct = (traced_ms - bare_ms) / bare_ms * 100.0;
  const bool overhead_ok = overhead_pct < kMaxOverheadPct;
  std::printf("observability overhead: bare %.2f ms/q, traced %.2f ms/q "
              "-> %+.2f%% (gate < %.0f%%)%s\n",
              bare_ms / workload.size(), traced_ms / workload.size(),
              overhead_pct, kMaxOverheadPct,
              overhead_ok ? "" : "  OVERHEAD GATE FAILED");

  JsonValue context = JsonValue::MakeObject();
  context.Set("bench", JsonValue("whynot_sharded"));
  context.Set("n", JsonValue(n));
  context.Set("questions", JsonValue(workload.size()));
  context.Set("host_hardware_concurrency",
              JsonValue(static_cast<size_t>(
                  std::thread::hardware_concurrency())));
  context.Set("speedup_4_shards_vs_1", JsonValue(scatter_speedup));
  context.Set("speedup_metric",
              JsonValue("scatter_gather_latency_model (one core/node per "
                        "shard; per-shard oracle fan-out tasks timed "
                        "individually, coordinator remainder added)"));
  context.Set("wall_speedup_4_shards_vs_1", JsonValue(wall_speedup));
  context.Set("observability_overhead_pct", JsonValue(overhead_pct));
  context.Set("results_match", JsonValue(all_match && overhead_ok));

  JsonValue benches = JsonValue::MakeArray();
  auto bench_row = [&](const std::string& name, double ms_per_question) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("name", JsonValue(name));
    row.Set("run_type", JsonValue("iteration"));
    row.Set("iterations", JsonValue(workload.size()));
    row.Set("real_time", JsonValue(ms_per_question));
    row.Set("cpu_time", JsonValue(ms_per_question));
    row.Set("time_unit", JsonValue("ms"));
    row.Set("items_per_second", JsonValue(1000.0 / ms_per_question));
    benches.Append(std::move(row));
  };
  const std::string suffix = "/" + std::to_string(n);
  bench_row("whynot_sharded/unsharded" + suffix,
            baseline_ms / workload.size());
  for (const ShardRun& r : runs) {
    const std::string shard_tag = "/shards:" + std::to_string(r.shards);
    bench_row("whynot_sharded/wall" + shard_tag + suffix,
              r.wall_ms / workload.size());
    bench_row("whynot_sharded/scatter" + shard_tag + suffix,
              r.scatter_ms / workload.size());
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("context", std::move(context));
  doc.Set("benchmarks", std::move(benches));

  std::ofstream out(json_path, std::ios::trunc);
  out << doc.Dump() << "\n";
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  // The exactness gate: a fast-but-wrong distributed why-not must fail
  // loudly, exactly like bench_sharded. The overhead gate fails the same
  // way: instrumentation that costs >= 2% is a perf regression, not a
  // freebie.
  return all_match && overhead_ok ? 0 : 1;
}
