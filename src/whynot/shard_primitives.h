// Copyright (c) 2026 The YASK reproduction authors.
// Per-shard why-not primitives: the single-shard halves of every oracle
// fan-out, factored out of the oracle so that EVERY deployment shape runs
// the same code on a shard's data.
//
// Three call sites share these:
//   * LocalWhyNotOracle       — one shard, in process (views it as 1 shard);
//   * ShardedWhyNotOracle     — N shards, fan-out over a thread pool;
//   * ShardService (remote)   — one shard behind HTTP; the coordinator's
//                               RemoteShardOracle merges the responses.
// The cross-layout bit-identity argument (docs/architecture.md, "Distributed
// why-not") only needs each shard's contribution to be the same doubles
// arithmetic everywhere — which is guaranteed here by having exactly one
// implementation of each per-shard primitive, keyed on GLOBAL ids and the
// GLOBAL SDist normaliser.

#ifndef YASK_WHYNOT_SHARD_PRIMITIVES_H_
#define YASK_WHYNOT_SHARD_PRIMITIVES_H_

#include <memory>
#include <vector>

#include "src/index/kcr_tree.h"
#include "src/index/score_plane_index.h"
#include "src/index/setr_tree.h"
#include "src/query/query.h"
#include "src/query/scoring.h"
#include "src/storage/object_store.h"
#include "src/whynot/keyword_adaption.h"

namespace yask {

/// One shard as the generic fan-out machinery sees it. `to_global` maps the
/// shard store's local ids to global ids (null = ids are already global,
/// i.e. the unsharded layout).
struct OracleShardView {
  const ObjectStore* store = nullptr;
  const SetRTree* setr = nullptr;  // Null only where Rank() is never used.
  const KcRTree* kcr = nullptr;    // Null only where ProbeRank() is unused.
  const std::vector<ObjectId>* to_global = nullptr;
};

/// Tie-aware scan count of objects in one shard outscoring the target:
/// score > target_score, or == with global id < target_global (D6). The
/// target itself (present in exactly one shard) is skipped by global id.
size_t ShardScanOutscoring(const OracleShardView& view, const Scorer& scorer,
                           double target_score, ObjectId target_global);

/// One shard's Eqn. (3) score-plane state for one query: the plane points
/// (basic mode) or a ScorePlaneIndex over them (optimized mode), with the
/// two per-shard primitives the weight sweep fans out — count-above and
/// crossing collection. Plane points carry GLOBAL ids.
class ShardPlane {
 public:
  ShardPlane(const OracleShardView& view, const Query& query, double dist_norm,
             bool optimized);

  /// Tie-aware count of this shard's points outscoring `anchor` at weight
  /// `w`. `threshold` must be anchor.ScoreAt(w) — the caller computes it
  /// once per sweep event so every shard compares against the same double.
  /// Allocation-free (this sits on the weight sweep's innermost loop).
  size_t CountAbove(double w, double threshold, const PlanePoint& anchor,
                    size_t* nodes_visited) const;

  /// Batched CountAbove over the (weights × anchors) grid:
  /// (*counts)[wi * anchors.size() + a] = CountAbove(weights[wi], anchors[a])
  /// with threshold anchors[a].ScoreAt(weights[wi]) — the same expression
  /// every caller of CountAbove evaluates, so each batched count is the same
  /// double-for-double computation as its per-call twin. `counts` must be
  /// pre-sized to weights.size() * anchors.size().
  void CountAboveBatch(const std::vector<double>& weights,
                       const std::vector<PlanePoint>& anchors,
                       std::vector<size_t>* counts,
                       size_t* nodes_visited) const;

  /// Appends every crossing weight of `anchor`'s score line with one of this
  /// shard's lines inside [wlo, whi] to `events` (duplicates allowed — the
  /// caller sorts and deduplicates the merged set).
  void CollectCrossings(const PlanePoint& anchor, double wlo, double whi,
                        std::vector<double>* events,
                        size_t* nodes_visited) const;

  bool optimized() const { return optimized_; }

 private:
  bool optimized_;
  std::vector<PlanePoint> pts_;             // Basic mode only.
  std::unique_ptr<ScorePlaneIndex> index_;  // Optimized mode only.
};

/// Per-shard progressive outscoring-count interval over that shard's
/// KcR-tree: exact counts from resolved leaves plus per-frontier-node
/// CountBounds. Tie-breaks compare GLOBAL ids, so the interval is the
/// shard's exact contribution to the global rank (Eqn. (4) sums them).
class ShardRankRefiner {
 public:
  /// `scorer` must be bound to the candidate query and outlive the refiner;
  /// `stats` must outlive it too (counters accumulate as levels refine).
  ShardRankRefiner(const OracleShardView& view, const Scorer& scorer,
                   ObjectId target_global, double target_score,
                   KeywordAdaptStats* stats);

  size_t count_lower() const { return exact_ + sum_lower_; }
  size_t count_upper() const { return exact_ + sum_upper_; }
  bool resolved() const { return frontier_.empty() || sum_lower_ == sum_upper_; }

  /// Descends the whole frontier one tree level ("when traversing the
  /// KcR-tree downwards, we get tighter bounds", §3.3): every frontier node
  /// is replaced by its children's bounds, leaves by exact tie-aware counts.
  /// No-op when resolved.
  void RefineLevel();

 private:
  struct Frontier {
    KcRTree::NodeId node;
    CountBounds bounds;
  };

  void PushNode(KcRTree::NodeId id, const KcRTree::Node& node);

  const OracleShardView* view_;
  const Scorer* scorer_;
  ObjectId target_;
  double target_score_;
  KeywordAdaptStats* stats_;
  std::vector<Frontier> frontier_;
  size_t exact_ = 0;
  size_t sum_lower_ = 0;
  size_t sum_upper_ = 0;
};

}  // namespace yask

#endif  // YASK_WHYNOT_SHARD_PRIMITIVES_H_
