// Copyright (c) 2026 The YASK reproduction authors.
// The rank/candidate oracle seam between the why-not algorithms and the
// corpus they run over.
//
// The three why-not modules (explanation, preference adjustment, keyword
// adaption) are global by construction: they rank objects against the WHOLE
// dataset, sweep the weight plane over every object's (1−SDist, TSim) point,
// and bracket candidate ranks with index bounds. Before this seam existed
// they walked one store's SetR/KcR-trees directly, which is why a sharded
// service could not answer /whynot. The observation that unlocks exact
// distributed why-not is that every one of those primitives is a
// partition-sum or a partition-union:
//
//   * rank(o, q) − 1   = Σ over shards of the shard's tie-aware outscoring
//                        count (scores are bit-identical across layouts —
//                        global SDist normaliser, shared vocabulary — and the
//                        tie order compares GLOBAL ids);
//   * the Eqn. (3) crossing-weight candidates of a missing object are the
//     union of each shard's crossings (each crossing is computed from the
//     same two doubles in either layout, so the union deduplicates exactly);
//   * the Eqn. (4) rank interval of a candidate query is 1 + Σ over shards
//     of per-shard KcR count intervals ([lo,hi] sums elementwise).
//
// WhyNotOracle captures exactly those primitives. The algorithms run
// unchanged over any implementation; LocalWhyNotOracle serves one store,
// ShardedWhyNotOracle (src/corpus/sharded_whynot_oracle.h) fans every call
// out over the shard pool and merges as above. Determinism argument:
// docs/architecture.md, "Distributed why-not".

#ifndef YASK_WHYNOT_WHYNOT_ORACLE_H_
#define YASK_WHYNOT_WHYNOT_ORACLE_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/index/kcr_tree.h"
#include "src/index/score_plane_index.h"
#include "src/index/setr_tree.h"
#include "src/query/query.h"
#include "src/query/scoring.h"
#include "src/query/topk_engine.h"
#include "src/storage/object_store.h"
#include "src/whynot/keyword_adaption.h"
#include "src/whynot/preference_adjustment.h"
#include "src/whynot/shard_primitives.h"

namespace yask {

class Corpus;

/// SDist / TSim / ST(o, q) of one object, normalised by `dist_norm` — the
/// exact floating-point arithmetic Scorer uses, evaluable from an object
/// reference alone (a sharded oracle has no single backing store to bind a
/// Scorer to).
struct ObjectScoreParts {
  double sdist = 0.0;
  double tsim = 0.0;
  double score = 0.0;
};

inline ObjectScoreParts ScorePartsOf(const Query& query, double dist_norm,
                                     const SpatialObject& o) {
  ObjectScoreParts parts;
  parts.sdist = NormalizedSpatialDistance(o.loc, query.loc, dist_norm);
  parts.tsim = query.doc.Jaccard(o.doc);
  parts.score =
      query.w.ws * (1.0 - parts.sdist) + query.w.wt * parts.tsim;
  return parts;
}

/// A per-query score-plane session: the Eqn. (3) primitives over whatever
/// corpus layout the oracle serves. The query passed to PrepareScorePlane
/// must outlive the session.
class ScorePlaneSession {
 public:
  virtual ~ScorePlaneSession() = default;

  /// The score-plane point (1 − SDist, TSim) of a missing object, carrying
  /// its GLOBAL id (the tie-break identity everywhere in the weight sweep).
  virtual PlanePoint Anchor(ObjectId global_id) const = 0;

  /// Tie-aware count of objects outscoring `anchor` at weight `w`
  /// (rank − 1). Work counters accumulate into `stats`.
  virtual size_t CountAbove(double w, const PlanePoint& anchor,
                            PreferenceAdjustStats* stats) const = 0;

  /// Appends every crossing weight of `anchor`'s score line with another
  /// object's line inside [wlo, whi] to `events` (duplicates allowed — the
  /// caller sorts and deduplicates the merged set).
  virtual void CollectCrossings(const PlanePoint& anchor, double wlo,
                                double whi, std::vector<double>* events,
                                PreferenceAdjustStats* stats) const = 0;

  /// Batched CountAbove: counts[wi * anchors.size() + a] ==
  /// CountAbove(weights[wi], anchors[a]) for every (weight, anchor) pair,
  /// answerable in ONE fan-out (one request per shard for a remote session)
  /// instead of one per pair. The base implementation loops; layout-aware
  /// sessions override. Each count is the same partition-sum either way, so
  /// results are bit-identical to per-call CountAbove.
  virtual std::vector<size_t> CountAboveBatch(
      const std::vector<double>& weights,
      const std::vector<PlanePoint>& anchors,
      PreferenceAdjustStats* stats) const;

  /// How many candidate weights per CountAboveBatch this session wants the
  /// Step-4 sweep to speculate on. In-process sessions return 1 (a fan-out
  /// costs microseconds; speculated work past the floor cut is pure waste);
  /// remote sessions size the segment from observed RPC latency.
  virtual size_t PreferredSweepBatch() const { return 1; }
};

/// A progressive rank interval for one (candidate query, missing object)
/// pair: 1 + Σ per-shard KcR outscoring-count intervals, tightened one tree
/// level at a time ("when traversing the KcR-tree downwards, we get tighter
/// bounds", §3.3). Contract: lower() <= true rank <= upper() always;
/// RefineLevel() never widens either end; resolved() means lower == upper.
class RankProbe {
 public:
  virtual ~RankProbe() = default;
  virtual size_t lower() const = 0;
  virtual size_t upper() const = 0;
  virtual bool resolved() const = 0;
  virtual void RefineLevel() = 0;
};

/// One (query, target object) pair of a batched oracle call. The query must
/// outlive the call; batch implementations that keep per-target state (rank
/// probes) copy it.
struct OracleTargetSpec {
  const Query* query = nullptr;
  ObjectId target = kInvalidObject;  // Global id.
};

/// A batch of Eqn. (4) rank probes sharing fan-outs: created in one fan-out
/// across the shards, and refined one tree level per fan-out across every
/// listed member. This is the batching seam of keyword adaption: instead of
/// one oracle round-trip per (candidate, missing object, level) probe, the
/// search issues ONE RefineLevel per refinement level covering ALL live
/// candidates — which a remote oracle turns into one request per shard per
/// level, regardless of how many candidates are in flight.
class RankProbeBatch {
 public:
  virtual ~RankProbeBatch() = default;

  virtual size_t size() const = 0;
  /// Rank interval of member i (same contract as RankProbe): lower() <=
  /// true rank <= upper(); RefineLevel never widens; resolved == collapsed.
  virtual size_t lower(size_t i) const = 0;
  virtual size_t upper(size_t i) const = 0;
  virtual bool resolved(size_t i) const = 0;
  /// Descends every listed member's open frontiers one level in one fan-out.
  /// Members already resolved are no-ops.
  virtual void RefineLevel(const std::vector<size_t>& members) = 0;
};

/// RankProbe as a batch of one — the single-probe API is everywhere a view
/// over the batch machinery, so both paths refine through identical code
/// (oracle implementations wrap their batch type in this to serve
/// ProbeRank).
class BatchOfOneProbe : public RankProbe {
 public:
  explicit BatchOfOneProbe(std::unique_ptr<RankProbeBatch> batch)
      : batch_(std::move(batch)) {}

  size_t lower() const override { return batch_->lower(0); }
  size_t upper() const override { return batch_->upper(0); }
  bool resolved() const override { return batch_->resolved(0); }
  void RefineLevel() override { batch_->RefineLevel(kSelf); }

 private:
  static inline const std::vector<size_t> kSelf{0};
  std::unique_ptr<RankProbeBatch> batch_;
};

/// The seam. All object ids crossing this interface are GLOBAL ids.
class WhyNotOracle {
 public:
  virtual ~WhyNotOracle() = default;

  virtual size_t size() const = 0;
  /// The SDist normaliser of Eqn. (1): the WHOLE dataset's MBR diagonal.
  virtual double dist_norm() const = 0;
  /// The object with a global id. Note: in a sharded layout the returned
  /// object's `.id` field is shard-local; use the id you passed for identity.
  virtual const SpatialObject& Object(ObjectId global_id) const = 0;

  /// Exact top-k under any query, with global result ids.
  virtual TopKResult TopK(const Query& query,
                          TopKStats* stats = nullptr) const = 0;

  /// Tie-aware exact rank of an object (D6 order), via pruned index walks.
  virtual size_t Rank(const Query& query, ObjectId global_id) const = 0;

  /// Tie-aware exact count of objects outscoring `global_id` under `query`
  /// (== Rank − 1), by full scan — the cache-friendly path the keyword model
  /// uses for R(M, q) and for basic-mode candidate ranks.
  virtual size_t OutscoringCount(const Query& query, ObjectId global_id,
                                 KeywordAdaptStats* stats) const = 0;

  /// Builds the per-query score-plane state for Eqn. (3). `query` must
  /// outlive the returned session.
  virtual std::unique_ptr<ScorePlaneSession> PrepareScorePlane(
      const Query& query, PrefAdjustMode mode) const = 0;

  /// A rank interval for `global_id` under `candidate` (copied into the
  /// probe). Requires the corpus to have its KcR-tree(s). `stats` must
  /// outlive the probe (counters are flushed on destruction).
  virtual std::unique_ptr<RankProbe> ProbeRank(
      const Query& candidate, ObjectId global_id,
      KeywordAdaptStats* stats) const = 0;

  /// Batched OutscoringCount: one count per spec, semantically identical to
  /// calling OutscoringCount per spec but answerable in one fan-out (one
  /// round-trip per shard for a remote oracle). The base implementation
  /// loops; layout-aware oracles override.
  virtual std::vector<size_t> OutscoringCountBatch(
      const std::vector<OracleTargetSpec>& specs,
      KeywordAdaptStats* stats) const;

  /// Batched ProbeRank: one rank interval per spec, created in one fan-out
  /// and refined level-synchronously (see RankProbeBatch). Same KcR-tree
  /// requirement as ProbeRank; `stats` must outlive the batch. The base
  /// implementation wraps per-spec probes; layout-aware oracles override.
  virtual std::unique_ptr<RankProbeBatch> ProbeRankBatch(
      const std::vector<OracleTargetSpec>& specs,
      KeywordAdaptStats* stats) const;
};

/// Everything the shared fan-out/merge implementation needs: the shard
/// views, the global normaliser, and the worker pool (null = run fan-outs
/// inline on the calling thread — single-shard corpora and one-core hosts).
struct OracleContext {
  std::vector<OracleShardView> views;
  /// Precomputed 0..views.size()-1, so full fan-outs on hot paths reuse one
  /// index list instead of allocating per call (kept in sync by the oracle
  /// constructors that fill `views`).
  std::vector<size_t> all_shards;
  double dist_norm = 0.0;
  ThreadPool* pool = nullptr;
  /// Benchmark instrumentation: when non-null (size == views.size()), every
  /// per-shard fan-out task adds its busy time here — the scatter-gather
  /// deployment model of bench_whynot_sharded. Not safe under concurrent
  /// oracle calls; leave null in servers.
  std::vector<double>* shard_busy_ms = nullptr;
};

/// The shared implementation of every oracle primitive except TopK (whose
/// engines differ): partition-sum / partition-union fan-outs over the
/// context's shard views. LocalWhyNotOracle and ShardedWhyNotOracle differ
/// only in how they build the context and answer Object()/TopK().
class ContextWhyNotOracle : public WhyNotOracle {
 public:
  size_t size() const override;
  double dist_norm() const override { return ctx_.dist_norm; }

  size_t Rank(const Query& query, ObjectId global_id) const override;
  size_t OutscoringCount(const Query& query, ObjectId global_id,
                         KeywordAdaptStats* stats) const override;
  std::unique_ptr<ScorePlaneSession> PrepareScorePlane(
      const Query& query, PrefAdjustMode mode) const override;
  std::unique_ptr<RankProbe> ProbeRank(const Query& candidate,
                                       ObjectId global_id,
                                       KeywordAdaptStats* stats) const override;
  /// One fan-out for the whole batch: each shard task scans/refines every
  /// spec, so the pool is dispatched once per call instead of once per spec.
  std::vector<size_t> OutscoringCountBatch(
      const std::vector<OracleTargetSpec>& specs,
      KeywordAdaptStats* stats) const override;
  std::unique_ptr<RankProbeBatch> ProbeRankBatch(
      const std::vector<OracleTargetSpec>& specs,
      KeywordAdaptStats* stats) const override;

  const ThreadPool* pool() const { return ctx_.pool; }
  void set_shard_busy_ms(std::vector<double>* sink) {
    ctx_.shard_busy_ms = sink;
  }

 protected:
  OracleContext ctx_;
};

/// The oracle over one unsharded store — the original why-not data path.
/// Null `setr` / `kcr` are allowed for callers that never touch the methods
/// needing them (the legacy module entry points pass only what they have).
class LocalWhyNotOracle : public ContextWhyNotOracle {
 public:
  LocalWhyNotOracle(const ObjectStore& store, const SetRTree* setr,
                    const KcRTree* kcr);
  /// Over a full corpus (requires nothing; ProbeRank needs corpus.has_kcr()).
  explicit LocalWhyNotOracle(const Corpus& corpus);

  const SpatialObject& Object(ObjectId global_id) const override {
    return store_->Get(global_id);
  }
  TopKResult TopK(const Query& query, TopKStats* stats) const override;

 private:
  const ObjectStore* store_;
  std::optional<SetRTopKEngine> topk_;  // Engaged when setr is present.
};

}  // namespace yask

#endif  // YASK_WHYNOT_WHYNOT_ORACLE_H_
