// Batched Eqn. (3) sweep acceptance — the parity contract of
// PreferenceAdjustOptions::batch_sweep: for randomized datasets, shard
// counts (1/2/4/8), routers, modes and segment sizes, the speculative
// segment sweep (ScorePlaneSession::CountAboveBatch, one fan-out per
// segment) must return BYTE-identical refinements to the per-event sweep it
// replaces — every refined-query field, every penalty term compared with ==,
// and identical crossing/candidate work counters. The only licensed
// difference is sweep_fanouts: the batched sweep must spend no more count
// fan-outs than the per-event sweep, and strictly fewer once a segment
// covers more than one candidate.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/corpus/sharded_corpus.h"
#include "src/corpus/sharded_whynot_oracle.h"
#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"
#include "src/storage/hotel_generator.h"
#include "src/whynot/preference_adjustment.h"
#include "src/whynot/whynot_oracle.h"

namespace yask {
namespace {

/// Missing objects ranked just outside the top-k.
std::vector<ObjectId> PickMissing(const ObjectStore& store, const Query& q,
                                  size_t count, size_t offset) {
  Query probe = q;
  probe.k = static_cast<uint32_t>(q.k + offset + count + 5);
  const TopKResult wide = TopKScan(store, probe);
  std::vector<ObjectId> missing;
  for (size_t i = q.k + offset; i < wide.size() && missing.size() < count;
       ++i) {
    missing.push_back(wide[i].id);
  }
  return missing;
}

/// `speculative` = the segment can cover more than one candidate, so counts
/// past the floor cut may be FETCHED (index nodes visited, rescans run) and
/// then discarded. The refinement and the crossing/candidate counters are
/// identical regardless; the traversal-work counters are identical only when
/// nothing is over-fetched (segment <= 1), and >= otherwise.
void ExpectSameRefinement(const RefinedPreferenceQuery& batched,
                          const RefinedPreferenceQuery& per_event,
                          const std::string& label,
                          bool speculative = false) {
  EXPECT_EQ(batched.already_in_result, per_event.already_in_result) << label;
  EXPECT_EQ(batched.refined.w.ws, per_event.refined.w.ws) << label;
  EXPECT_EQ(batched.refined.w.wt, per_event.refined.w.wt) << label;
  EXPECT_EQ(batched.refined.k, per_event.refined.k) << label;
  EXPECT_EQ(batched.refined.doc.ids(), per_event.refined.doc.ids()) << label;
  EXPECT_EQ(batched.original_rank, per_event.original_rank) << label;
  EXPECT_EQ(batched.refined_rank, per_event.refined_rank) << label;
  EXPECT_EQ(batched.penalty.value, per_event.penalty.value) << label;
  EXPECT_EQ(batched.penalty.k_term, per_event.penalty.k_term) << label;
  EXPECT_EQ(batched.penalty.mod_term, per_event.penalty.mod_term) << label;
  EXPECT_EQ(batched.penalty.delta_k, per_event.penalty.delta_k) << label;
  EXPECT_EQ(batched.penalty.delta_w, per_event.penalty.delta_w) << label;
  EXPECT_EQ(batched.penalty.delta_doc, per_event.penalty.delta_doc) << label;
  // The work the sweep does is identical — only how it is shipped differs.
  EXPECT_EQ(batched.stats.crossings_found, per_event.stats.crossings_found)
      << label;
  EXPECT_EQ(batched.stats.candidates_evaluated,
            per_event.stats.candidates_evaluated)
      << label;
  if (speculative) {
    EXPECT_GE(batched.stats.index_nodes_visited,
              per_event.stats.index_nodes_visited)
        << label;
    EXPECT_GE(batched.stats.full_rescans, per_event.stats.full_rescans)
        << label;
  } else {
    EXPECT_EQ(batched.stats.index_nodes_visited,
              per_event.stats.index_nodes_visited)
        << label;
    EXPECT_EQ(batched.stats.full_rescans, per_event.stats.full_rescans)
        << label;
  }
  EXPECT_LE(batched.stats.sweep_fanouts, per_event.stats.sweep_fanouts)
      << label;
}

struct ParityOptions {
  std::vector<uint32_t> shard_counts = {1, 2, 4, 8};
  bool use_hash_router = false;
  int trials = 4;
  PrefAdjustMode mode = PrefAdjustMode::kOptimized;
  /// Forced segment sizes to sweep besides the session default (0).
  std::vector<size_t> segment_sizes = {0, 1, 3, 64};
};

void RunSweepParityTrials(const ObjectStore& store, uint64_t query_seed,
                          const ParityOptions& popt = {}) {
  CorpusOptions options;
  options.fanout_threads = 3;  // Force the pooled fan-out path on 1-core CI.
  for (const uint32_t shards : popt.shard_counts) {
    std::unique_ptr<ShardRouter> router;
    if (popt.use_hash_router) {
      router = std::make_unique<HashShardRouter>(shards);
    } else {
      router = GridShardRouter::Fit(store, shards);
    }
    const std::string label = router->Describe();
    const ShardedCorpus sharded =
        ShardedCorpus::Partition(store, std::move(router), options);
    const ShardedWhyNotOracle oracle(sharded);

    Rng rng(query_seed);
    for (int trial = 0; trial < popt.trials; ++trial) {
      Query q;
      q.loc = SampleQueryLocation(store, &rng);
      q.doc = SampleQueryKeywords(store, 1 + trial % 3, &rng);
      q.k = 3 + static_cast<uint32_t>(rng.NextBounded(5));
      q.w = Weights::FromWs(rng.NextDouble(0.2, 0.8));
      const size_t m_count = 1 + trial % 2;
      const std::vector<ObjectId> missing =
          PickMissing(store, q, m_count, /*offset=*/2 + trial);
      if (missing.size() != m_count) continue;

      PreferenceAdjustOptions per_event;
      per_event.mode = popt.mode;
      per_event.batch_sweep = false;
      auto reference = AdjustPreference(oracle, q, missing, per_event);
      ASSERT_TRUE(reference.ok())
          << label << ": " << reference.status().ToString();

      for (const size_t segment : popt.segment_sizes) {
        PreferenceAdjustOptions batched = per_event;
        batched.batch_sweep = true;
        batched.sweep_batch_size = segment;
        auto result = AdjustPreference(oracle, q, missing, batched);
        ASSERT_TRUE(result.ok())
            << label << ": " << result.status().ToString();
        ExpectSameRefinement(*result, *reference,
                             label + " trial " + std::to_string(trial) +
                                 " segment " + std::to_string(segment),
                             /*speculative=*/segment > 1);
      }
    }
  }
}

TEST(ShardedSweepParityTest, ClusteredSyntheticDataset) {
  DatasetSpec spec;
  spec.num_objects = 900;
  spec.vocabulary_size = 60;
  spec.min_keywords = 2;
  spec.max_keywords = 5;
  spec.seed = 281;
  RunSweepParityTrials(GenerateDataset(spec), /*query_seed=*/311);
}

TEST(ShardedSweepParityTest, HashRouterScatter) {
  // A locality-free router: every shard holds a slice of every
  // neighbourhood, so every segment fan-out genuinely merges all shards.
  DatasetSpec spec;
  spec.num_objects = 500;
  spec.vocabulary_size = 40;
  spec.min_keywords = 2;
  spec.max_keywords = 4;
  spec.seed = 282;
  ParityOptions popt;
  popt.use_hash_router = true;
  popt.shard_counts = {2, 4, 8};
  RunSweepParityTrials(GenerateDataset(spec), /*query_seed=*/312, popt);
}

TEST(ShardedSweepParityTest, BasicModeAgrees) {
  // The paper's baseline (full rescan per candidate) batches too — and its
  // full_rescans meter must count the same logical rescans per pair.
  DatasetSpec spec;
  spec.num_objects = 400;
  spec.vocabulary_size = 30;
  spec.min_keywords = 2;
  spec.max_keywords = 4;
  spec.seed = 283;
  ParityOptions popt;
  popt.mode = PrefAdjustMode::kBasic;
  popt.shard_counts = {1, 4};
  popt.trials = 3;
  RunSweepParityTrials(GenerateDataset(spec), /*query_seed=*/313, popt);
}

TEST(ShardedSweepParityTest, TieHeavyDegenerateDataset) {
  // Exact score ties everywhere: clones at shared points with shared docs.
  // The floor cut and the per-event tie candidates (±kStepPastCrossing) must
  // land identically when fetched speculatively.
  ObjectStore store;
  const TermId a = store.mutable_vocab()->Intern("a");
  const TermId b = store.mutable_vocab()->Intern("b");
  const TermId c = store.mutable_vocab()->Intern("c");
  for (int i = 0; i < 240; ++i) {
    const double x = 0.1 + 0.2 * (i % 5);  // Five stacked columns.
    KeywordSet doc(i % 3 == 0   ? std::vector<TermId>{a}
                   : i % 3 == 1 ? std::vector<TermId>{a, b}
                                : std::vector<TermId>{b, c});
    store.Add(Point{x, 0.5}, std::move(doc), "clone");
  }
  ParityOptions popt;
  popt.trials = 3;
  RunSweepParityTrials(store, /*query_seed=*/314, popt);
}

TEST(ShardedSweepParityTest, HotelDemoDataset) {
  ParityOptions popt;
  popt.trials = 3;
  RunSweepParityTrials(GenerateHotelDataset(), /*query_seed=*/315, popt);
}

TEST(ShardedSweepParityTest, LambdaExtremesAgree) {
  // λ near 0 makes the feasible interval tiny (few events, floor cuts
  // early — over-fetch discard dominates); λ near 1 makes it huge (long
  // multi-segment sweeps). Both ends must stay bit-identical.
  DatasetSpec spec;
  spec.num_objects = 500;
  spec.vocabulary_size = 40;
  spec.seed = 284;
  const ObjectStore store = GenerateDataset(spec);
  const ShardedCorpus sharded =
      ShardedCorpus::Partition(store, GridShardRouter::Fit(store, 4));
  const ShardedWhyNotOracle oracle(sharded);

  Rng rng(316);
  for (const double lambda : {0.05, 0.5, 0.95}) {
    for (int trial = 0; trial < 3; ++trial) {
      Query q;
      q.loc = SampleQueryLocation(store, &rng);
      q.doc = SampleQueryKeywords(store, 2, &rng);
      q.k = 4;
      const std::vector<ObjectId> missing =
          PickMissing(store, q, 1, /*offset=*/2 + trial);
      if (missing.empty()) continue;

      PreferenceAdjustOptions per_event;
      per_event.lambda = lambda;
      per_event.batch_sweep = false;
      PreferenceAdjustOptions batched = per_event;
      batched.batch_sweep = true;
      batched.sweep_batch_size = 7;
      auto reference = AdjustPreference(oracle, q, missing, per_event);
      auto result = AdjustPreference(oracle, q, missing, batched);
      ASSERT_TRUE(reference.ok());
      ASSERT_TRUE(result.ok());
      ExpectSameRefinement(*result, *reference,
                           "lambda " + std::to_string(lambda) + " trial " +
                               std::to_string(trial),
                           /*speculative=*/true);
    }
  }
}

}  // namespace
}  // namespace yask
