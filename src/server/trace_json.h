// Copyright (c) 2026 The YASK reproduction authors.
// JSON rendering of trace spans — the shared wire shape of the coordinator's
// GET /trace/<id> and the shard server's GET /shard/trace?id=… endpoints.
// Span ids are rendered as 16-hex-char STRINGS, not JSON numbers: the ids
// come from a randomly seeded 64-bit counter and a double-backed JSON number
// would silently round anything past 2^53, breaking parent/child stitching.

#ifndef YASK_SERVER_TRACE_JSON_H_
#define YASK_SERVER_TRACE_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/trace.h"
#include "src/server/json.h"

namespace yask {

/// "%016llx" of a span id ("0" stays "0000000000000000"; parent 0 renders
/// as the empty string at the span level instead — see TraceSpanToJson).
std::string SpanIdHex(uint64_t id);

/// {"id": hex, "parent": hex|"", "name", "detail", "start_ms",
///  "duration_ms", "node": node} — `node` tags which process recorded the
/// span ("coordinator", "shard 2 127.0.0.1:9002", …).
JsonValue TraceSpanToJson(const TraceSpan& span, const std::string& node);

/// Array of TraceSpanToJson rows.
JsonValue TraceSpansToJson(const std::vector<TraceSpan>& spans,
                           const std::string& node);

/// Full stored-trace document: {"trace_id", "total_ms", "pinned", "spans"}.
JsonValue StoredTraceToJson(const TraceStore::Stored& stored,
                            const std::string& node);

}  // namespace yask

#endif  // YASK_SERVER_TRACE_JSON_H_
