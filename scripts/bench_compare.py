#!/usr/bin/env python3
"""Compare this run's BENCH_*.json against the previous run's artifact.

Artifacts expire; a trajectory does not. The nightly bench job downloads the
previous run's bench-json-* artifact into a directory, runs this script, and
publishes the emitted BENCH_compare.md in the job summary — so every nightly
shows its delta against the last one, and a silent throughput regression
fails the job instead of ageing out with the artifact.

    bench_compare.py <current_dir> <previous_dir>
                     [--threshold=0.25] [--out=BENCH_compare.md]

Regression rule: for every benchmark row present in BOTH runs of an
EXACTNESS-GATED bench (the sharded/remote/replica benches whose binaries
already fail on any wrong answer), a wall-time metric (time_unit "ms") more
than `threshold` above the previous value is a throughput regression and the
script exits 1. Non-time rows (round-trips, req/s, counts) and benches seen
on only one side are reported but never fail the run. A missing or empty
previous directory is the first run: report, exit 0.

Only the Python standard library is used.
"""

import glob
import json
import os
import sys

# Benches whose binaries gate on exactness — a time regression here is a real
# slowdown of a verified-correct path, so it fails the job.
EXACTNESS_GATED = {
    "BENCH_sharded.json",
    "BENCH_whynot_sharded.json",
    "BENCH_remote_shards.json",
    "BENCH_replica_failover.json",
    "BENCH_load.json",
}


def load_rows(directory):
    """{bench file name: {row name: (real_time, time_unit)}}."""
    rows = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)
        if name == "BENCH_compare.md":
            continue
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as error:
            print(f"bench_compare: skipping unreadable {path}: {error}",
                  file=sys.stderr)
            continue
        bench_rows = {}
        for row in doc.get("benchmarks", []):
            try:
                bench_rows[row["name"]] = (float(row["real_time"]),
                                           str(row.get("time_unit", "")))
            except (KeyError, TypeError, ValueError):
                continue
        rows[name] = bench_rows
    return rows


def main(argv):
    threshold = 0.25
    out_path = "BENCH_compare.md"
    positional = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--out="):
            out_path = arg.split("=", 1)[1]
        else:
            positional.append(arg)
    if len(positional) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    current_dir, previous_dir = positional

    current = load_rows(current_dir)
    previous = load_rows(previous_dir) if os.path.isdir(previous_dir) else {}

    lines = ["# Bench trajectory", ""]
    regressions = []
    if not previous:
        lines.append("No previous bench artifact found — this run seeds the "
                     "trajectory; nothing to compare against.")
    for bench in sorted(current):
        gated = bench in EXACTNESS_GATED
        prev_rows = previous.get(bench, {})
        lines.append(f"## {bench}" + ("" if gated else " (not gated)"))
        lines.append("")
        lines.append("| benchmark | previous | current | delta |")
        lines.append("|---|---:|---:|---:|")
        for name, (value, unit) in sorted(current[bench].items()):
            prev = prev_rows.get(name)
            if prev is None:
                lines.append(f"| {name} | — | {value:.3f} {unit} | new |")
                continue
            prev_value, _ = prev
            if prev_value > 0:
                delta = (value - prev_value) / prev_value
                delta_text = f"{delta * 100.0:+.1f}%"
            else:
                delta = 0.0
                delta_text = "n/a"
            regressed = (gated and unit == "ms" and prev_value > 0
                         and value > prev_value * (1.0 + threshold))
            marker = "  **REGRESSION**" if regressed else ""
            lines.append(f"| {name} | {prev_value:.3f} {unit} | "
                         f"{value:.3f} {unit} | {delta_text}{marker} |")
            if regressed:
                regressions.append(f"{bench}: {name} {prev_value:.3f} -> "
                                   f"{value:.3f} {unit} ({delta_text})")
        lines.append("")

    # Tail-latency rollup: p50/p99 rows (the failover bench's chaos latency
    # distribution) get their own table so the tail is visible at a glance
    # instead of buried per-bench. Same data as above — the "ms" regression
    # rule already gates these rows where their bench is exactness-gated.
    tail = []
    for bench in sorted(current):
        for name, (value, unit) in sorted(current[bench].items()):
            if "p99" not in name and "p50" not in name:
                continue
            prev = previous.get(bench, {}).get(name)
            tail.append((bench, name,
                         prev[0] if prev is not None else None, value, unit))
    if tail:
        lines.append("## Tail latency")
        lines.append("")
        lines.append("| bench | row | previous | current |")
        lines.append("|---|---|---:|---:|")
        for bench, name, prev_value, value, unit in tail:
            prev_text = (f"{prev_value:.3f} {unit}"
                         if prev_value is not None else "—")
            lines.append(f"| {bench} | {name} | {prev_text} | "
                         f"{value:.3f} {unit} |")
        lines.append("")

    # Round-trip rollup: the batching trajectory (Eqn. (3) sweep segments and
    # Eqn. (4) probe levels vs their unbatched twins) in one table. These rows
    # come from exactness-gated benches whose binaries already fail on any
    # batched-vs-unbatched divergence or round-trip regression, so here they
    # are reported, not re-gated.
    trips = []
    for bench in sorted(current):
        for name, (value, unit) in sorted(current[bench].items()):
            if unit != "roundtrips":
                continue
            prev = previous.get(bench, {}).get(name)
            trips.append((bench, name,
                          prev[0] if prev is not None else None, value))
    if trips:
        lines.append("## Round-trips per question")
        lines.append("")
        lines.append("| bench | row | previous | current |")
        lines.append("|---|---|---:|---:|")
        for bench, name, prev_value, value in trips:
            prev_text = (f"{prev_value:.1f}" if prev_value is not None
                         else "—")
            lines.append(f"| {bench} | {name} | {prev_text} | {value:.1f} |")
        lines.append("")

    if regressions:
        lines.append(f"## FAILED: {len(regressions)} regression(s) beyond "
                     f"{threshold * 100.0:.0f}%")
        lines.extend(f"- {r}" for r in regressions)
    elif previous:
        lines.append(f"All exactness-gated wall times within "
                     f"{threshold * 100.0:.0f}% of the previous run.")

    report = "\n".join(lines) + "\n"
    with open(out_path, "w") as f:
        f.write(report)
    print(report)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
