#include "src/server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "src/common/string_util.h"
#include "src/common/timer.h"
#include "src/server/http_client.h"
#include "src/server/json.h"

namespace yask {

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  return HttpResponse{status, "application/json",
                      "{\"error\":" + JsonEscape(message) + "}"};
}

HttpServer::HttpServer(uint16_t port, size_t num_workers,
                       int keep_alive_idle_ms)
    : port_(port),
      num_workers_(num_workers == 0 ? 1 : num_workers),
      keep_alive_idle_ms_(keep_alive_idle_ms < 500 ? 500
                                                   : keep_alive_idle_ms) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& method, const std::string& path,
                       Handler handler) {
  routes_[{method, path}] = std::move(handler);
}

void HttpServer::RoutePrefix(const std::string& method,
                             const std::string& prefix, Handler handler) {
  prefix_routes_[{method, prefix}] = std::move(handler);
}

Status HttpServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("bind() failed: " +
                               std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("listen() failed");
  }

  running_.store(true);
  accept_thread_ = std::thread(&HttpServer::AcceptLoop, this);
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back(&HttpServer::WorkerLoop, this);
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Closing the listening socket unblocks accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Workers abandon the queue as soon as running_ drops (they only finish
  // the connection they already hold), so under load the queue can still be
  // full here: close every queued fd or they would leak.
  std::lock_guard<std::mutex> lock(mu_);
  while (!pending_.empty()) {
    ::close(pending_.front());
    pending_.pop();
  }
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push(fd);
    }
    cv_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return !pending_.empty() || !running_.load(); });
      // On Stop(), exit even with connections still queued: Stop() closes
      // them after the join. Serving a backlog during shutdown would make
      // Stop() latency unbounded under load.
      if (!running_.load()) return;
      fd = pending_.front();
      pending_.pop();
    }
    HandleConnection(fd);
  }
}

namespace {

/// Hard limits the shard endpoints rely on between nodes: a peer cannot make
/// a worker buffer unbounded header or body bytes.
constexpr size_t kMaxHeaderBytes = 1u << 20;
constexpr size_t kMaxBodyBytes = 32u << 20;
/// recv() poll tick: how often a blocked worker re-checks running_.
constexpr int kRecvTickMs = 500;
/// How long a request may stall mid-transfer before the connection drops.
constexpr int kRequestStallMs = 10000;

enum class ReadOutcome {
  kComplete,        // One full request parsed off the connection.
  kClosed,          // Peer closed / idle timeout / server stopping.
  kMalformed,       // Unparseable framing: answer 400 and drop.
  kHeadersTooLarge, // Header block over the limit: answer 431 and drop.
  kBodyTooLarge,    // Declared Content-Length over the limit: 413 and drop.
};

/// Reads one full request (header block + Content-Length body) from `fd`
/// into `*buffer`, which carries pipelined leftover bytes between calls.
/// On kComplete the request's bytes are consumed from the buffer and the
/// parsed request is in `*req` / `*keep_alive`. The socket must have a
/// kRecvTickMs SO_RCVTIMEO; `idle_ms` bounds the wait for the FIRST byte of
/// the next request, and a WALL-CLOCK kRequestStallMs deadline bounds the
/// whole transfer after that — a peer dripping bytes cannot refill it.
/// `backlog` reports whether other connections are queued for a worker; an
/// idle keep-alive connection yields to them instead of sitting on its
/// worker for the full idle window.
ReadOutcome ReadOneRequest(int fd, std::string* buffer,
                           const std::atomic<bool>& running, int idle_ms,
                           const std::function<bool()>& backlog,
                           HttpRequest* req, bool* keep_alive) {
  char buf[4096];
  int idle_waited_ms = 0;  // Reset by any received byte.
  int64_t request_deadline = 0;  // Set when the request's first byte lands.
  if (!buffer->empty()) {
    // Pipelined leftover counts as an in-progress request.
    request_deadline = NowMillis() + kRequestStallMs;
  }
  // Incremental parse state: the header block is located and parsed ONCE,
  // and the terminator search only covers newly appended bytes — a 32 MiB
  // body must not rescan the buffer per 4 KiB chunk.
  size_t scanned = 0;
  size_t header_end = std::string::npos;
  size_t content_length = 0;
  bool have_length = false;
  std::string request_line;
  std::string connection;
  std::map<std::string, std::string> headers;

  while (true) {
    if (header_end == std::string::npos &&
        buffer->size() > scanned) {
      // Resume the terminator search 3 bytes back: "\r\n\r\n" may straddle
      // the previous chunk boundary.
      const size_t from = scanned < 3 ? 0 : scanned - 3;
      header_end = buffer->find("\r\n\r\n", from);
      scanned = buffer->size();
      if (header_end != std::string::npos) {
        std::istringstream hs(buffer->substr(0, header_end));
        std::string line;
        std::getline(hs, line);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        request_line = line;
        while (std::getline(hs, line)) {
          if (!line.empty() && line.back() == '\r') line.pop_back();
          const std::string lower = ToLowerAscii(line);
          if (StartsWith(lower, "content-length:")) {
            uint64_t v = 0;
            if (ParseUint64(Trim(line.substr(15)), &v)) {
              content_length = static_cast<size_t>(v);
              have_length = true;
            }
          } else if (StartsWith(lower, "connection:")) {
            connection = Trim(lower.substr(11));
          }
          const size_t colon = line.find(':');
          if (colon != std::string::npos && colon > 0) {
            headers[ToLowerAscii(line.substr(0, colon))] =
                Trim(line.substr(colon + 1));
          }
        }
        if (content_length > kMaxBodyBytes) return ReadOutcome::kBodyTooLarge;
      } else if (buffer->size() > kMaxHeaderBytes) {
        return ReadOutcome::kHeadersTooLarge;
      }
    }

    if (header_end != std::string::npos) {
      const size_t body_have = buffer->size() - (header_end + 4);
      if (!have_length || body_have >= content_length) {
        // Request line: METHOD SP TARGET SP VERSION.
        std::vector<std::string> parts = SplitWhitespace(request_line);
        if (parts.size() < 2) return ReadOutcome::kMalformed;
        *req = HttpRequest{};
        req->method = parts[0];
        std::string target = parts[1];
        const size_t qpos = target.find('?');
        if (qpos != std::string::npos) {
          const std::string qs = target.substr(qpos + 1);
          target = target.substr(0, qpos);
          for (const std::string& kv : Split(qs, '&')) {
            const size_t eq = kv.find('=');
            if (eq == std::string::npos) {
              req->query_params[UrlDecode(kv)] = "";
            } else {
              req->query_params[UrlDecode(kv.substr(0, eq))] =
                  UrlDecode(kv.substr(eq + 1));
            }
          }
        }
        req->path = UrlDecode(target);
        req->headers = std::move(headers);
        const size_t body_len = have_length ? content_length : 0;
        req->body = buffer->substr(header_end + 4, body_len);
        buffer->erase(0, header_end + 4 + body_len);
        // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
        const bool http11 = parts.size() < 3 || parts[2] == "HTTP/1.1";
        *keep_alive = http11 ? connection != "close"
                             : connection == "keep-alive";
        return ReadOutcome::kComplete;
      }
    }

    if (request_deadline != 0 && NowMillis() >= request_deadline) {
      return ReadOutcome::kClosed;  // Stalled/dripping transfer.
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (request_deadline == 0) {
        request_deadline = NowMillis() + kRequestStallMs;
      }
      buffer->append(buf, static_cast<size_t>(n));
      idle_waited_ms = 0;
      continue;
    }
    if (n == 0) return ReadOutcome::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      if (!running.load()) return ReadOutcome::kClosed;
      if (buffer->empty() && request_deadline == 0) {
        // Between requests: recycle an idle keep-alive connection — at the
        // idle timeout, or immediately when other connections are waiting
        // for a worker (idle peers must not starve the accept queue).
        idle_waited_ms += kRecvTickMs;
        if (idle_waited_ms >= idle_ms || backlog()) {
          return ReadOutcome::kClosed;
        }
      }
      continue;
    }
    return ReadOutcome::kClosed;
  }
}

/// False when the peer stopped reading (or vanished): the caller must close
/// the connection — a partially-written response would desynchronise any
/// later keep-alive exchange.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;  // Includes an SO_SNDTIMEO expiry (EAGAIN).
    sent += static_cast<size_t>(n);
  }
  return true;
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

}  // namespace

void HttpServer::HandleConnection(int fd) {
  // The recv tick lets the worker observe Stop() and enforce the keep-alive
  // deadlines without a poller thread; TCP_NODELAY matters because the
  // remote-shard RPC path rides many small request/response pairs on one
  // connection.
  timeval tv{};
  tv.tv_sec = kRecvTickMs / 1000;
  tv.tv_usec = (kRecvTickMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  // A peer that stops READING must not pin a worker either: once the kernel
  // send buffer fills, send() blocks — bound it like the read side.
  timeval send_tv{};
  send_tv.tv_sec = kRequestStallMs / 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_tv, sizeof(send_tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const auto backlog = [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return !pending_.empty();
  };
  std::string buffer;
  while (running_.load()) {
    HttpRequest req;
    bool keep_alive = false;
    const ReadOutcome outcome = ReadOneRequest(fd, &buffer, running_,
                                               keep_alive_idle_ms_, backlog,
                                               &req, &keep_alive);
    if (outcome == ReadOutcome::kClosed) break;

    HttpResponse resp;
    bool close_after = true;
    switch (outcome) {
      case ReadOutcome::kMalformed:
        resp = HttpResponse::Error(400, "bad request");
        break;
      case ReadOutcome::kHeadersTooLarge:
        resp = HttpResponse::Error(431, "header block too large");
        break;
      case ReadOutcome::kBodyTooLarge:
        resp = HttpResponse::Error(413, "request body too large");
        break;
      default: {
        auto it = routes_.find({req.method, req.path});
        const Handler* prefix_handler = nullptr;
        if (it == routes_.end()) {
          // Longest matching prefix wins (the map iterates shortest first).
          size_t best_len = 0;
          for (const auto& [key, handler] : prefix_routes_) {
            if (key.first == req.method && req.path.size() > key.second.size()
                && req.path.compare(0, key.second.size(), key.second) == 0 &&
                key.second.size() >= best_len) {
              best_len = key.second.size();
              prefix_handler = &handler;
            }
          }
        }
        if (it != routes_.end()) {
          resp = it->second(req);
        } else if (prefix_handler != nullptr) {
          resp = (*prefix_handler)(req);
        } else {
          // Distinguish an unknown resource from a known one addressed with
          // the wrong method.
          bool path_known = false;
          for (const auto& [key, handler] : routes_) {
            if (key.second == req.path) {
              path_known = true;
              break;
            }
          }
          for (const auto& [key, handler] : prefix_routes_) {
            if (!path_known && req.path.size() > key.second.size() &&
                req.path.compare(0, key.second.size(), key.second) == 0) {
              path_known = true;
            }
          }
          resp = path_known ? HttpResponse::Error(405, "method not allowed")
                            : HttpResponse::Error(404, "no such endpoint");
        }
        close_after = !keep_alive;
        break;
      }
    }

    std::ostringstream out;
    out << "HTTP/1.1 " << resp.status << ' ' << StatusText(resp.status)
        << "\r\nContent-Type: " << resp.content_type
        << "\r\nContent-Length: " << resp.body.size() << "\r\nConnection: "
        << (close_after ? "close" : "keep-alive") << "\r\n\r\n"
        << resp.body;
    if (!SendAll(fd, out.str()) || close_after) break;
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += s[i] == '+' ? ' ' : s[i];
  }
  return out;
}

Result<std::string> HttpFetch(uint16_t port, const std::string& method,
                              const std::string& path_and_query,
                              const std::string& body, int* status_out) {
  // One connect + one Call of the persistent client, closed on return —
  // exactly one implementation of HTTP response framing in the tree.
  HttpClientConnection conn;
  if (Status s = conn.Connect("127.0.0.1", port, /*timeout_ms=*/5000);
      !s.ok()) {
    return s;
  }
  return conn.Call(method, path_and_query, body, /*deadline_ms=*/30000,
                   status_out);
}

}  // namespace yask
