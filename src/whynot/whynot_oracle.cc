#include "src/whynot/whynot_oracle.h"

#include <algorithm>
#include <cassert>
#include <latch>

#include "src/common/timer.h"
#include "src/corpus/corpus.h"
#include "src/query/ranking.h"

namespace yask {

namespace {

/// Runs fn(s) for the given shard indices — on the pool when the context
/// has one and more than one shard is involved (the caller blocks until all
/// complete), inline otherwise — accumulating per-shard busy time when the
/// bench instrumentation is on. Pool tasks are leaves (they never
/// re-submit), so a caller waiting on the latch cannot deadlock the pool.
void ForShards(const OracleContext& ctx, const std::vector<size_t>& shards,
               const std::function<void(size_t)>& fn) {
  auto timed = [&](size_t s) {
    if (ctx.shard_busy_ms == nullptr) {
      fn(s);
      return;
    }
    Timer timer;
    fn(s);
    (*ctx.shard_busy_ms)[s] += timer.ElapsedMillis();
  };
  if (ctx.pool == nullptr || shards.size() <= 1) {
    for (size_t s : shards) timed(s);
    return;
  }
  std::latch latch(static_cast<ptrdiff_t>(shards.size()));
  for (size_t s : shards) {
    ctx.pool->Submit([&timed, &latch, s] {
      timed(s);
      latch.count_down();
    });
  }
  latch.wait();
}

/// ForShards over every shard view (the context caches the index list).
void ForEachShard(const OracleContext& ctx,
                  const std::function<void(size_t)>& fn) {
  assert(ctx.all_shards.size() == ctx.views.size());
  ForShards(ctx, ctx.all_shards, fn);
}

/// Tie-aware scan count of objects in one shard outscoring the target:
/// score > target_score, or == with global id < target_global (D6). The
/// target itself (present in exactly one shard) is skipped by global id.
size_t ScanOutscoring(const OracleShardView& view, const Scorer& scorer,
                      double target_score, ObjectId target_global) {
  size_t above = 0;
  for (const SpatialObject& o : view.store->objects()) {
    const ObjectId gid =
        view.to_global != nullptr ? (*view.to_global)[o.id] : o.id;
    if (gid == target_global) continue;
    if (OutranksTarget(scorer.Score(o), gid, target_score, target_global)) {
      ++above;
    }
  }
  return above;
}

// --- Score-plane session -----------------------------------------------------

/// Appends the crossing weight of the anchor's line with p's line when it
/// exists and falls inside [wlo, whi] — the shared re-filter both layouts
/// run, so a crossing's weight is the same double wherever it is computed.
void AppendCrossingWeight(const PlanePoint& m, const PlanePoint& p,
                          double wlo, double whi,
                          std::vector<double>* events) {
  if (p.id == m.id) return;
  const double slope = (p.x - m.x) - (p.y - m.y);
  if (slope == 0.0) return;  // Parallel (or identical) lines: no crossing.
  const double wx = (m.y - p.y) / slope;
  if (!(wx >= wlo && wx <= whi)) return;
  events->push_back(wx);
}

/// Tie-aware count of points outscoring `anchor` at weight `w`, by scan
/// (basic mode; the paper's baseline).
size_t CountAboveScan(const std::vector<PlanePoint>& pts,
                      const PlanePoint& anchor, double w) {
  const double threshold = anchor.ScoreAt(w);
  size_t above = 0;
  for (const PlanePoint& p : pts) {
    if (p.id == anchor.id) continue;
    if (OutranksTarget(p.ScoreAt(w), p.id, threshold, anchor.id)) ++above;
  }
  return above;
}

/// The one ScorePlaneSession implementation: per-shard plane points (basic)
/// or per-shard score-plane indexes (optimized), merged by partition-sum /
/// partition-union. One shard with a null mapping reproduces the original
/// unsharded data path bit for bit.
class MultiShardScorePlaneSession : public ScorePlaneSession {
 public:
  MultiShardScorePlaneSession(const OracleContext* ctx,
                              const WhyNotOracle* oracle, const Query* query,
                              PrefAdjustMode mode)
      : ctx_(ctx),
        oracle_(oracle),
        query_(query),
        optimized_(mode == PrefAdjustMode::kOptimized) {
    const size_t n = ctx_->views.size();
    pts_.resize(n);
    if (optimized_) index_.resize(n);
    ForEachShard(*ctx_, [&](size_t s) {
      const OracleShardView& view = ctx_->views[s];
      std::vector<PlanePoint> pts = BuildPlanePoints(
          *view.store, *query_, ctx_->dist_norm, view.to_global);
      if (optimized_) {
        index_[s] = std::make_unique<ScorePlaneIndex>(std::move(pts));
      } else {
        pts_[s] = std::move(pts);
      }
    });
  }

  PlanePoint Anchor(ObjectId global_id) const override {
    // Computed from the object with the exact arithmetic BuildPlanePoints
    // uses, so the anchor is the same point in every layout.
    const ObjectScoreParts parts =
        ScorePartsOf(*query_, ctx_->dist_norm, oracle_->Object(global_id));
    return PlanePoint{1.0 - parts.sdist, parts.tsim, global_id};
  }

  size_t CountAbove(double w, const PlanePoint& anchor,
                    PreferenceAdjustStats* stats) const override {
    const size_t n = ctx_->views.size();
    const double threshold = anchor.ScoreAt(w);

    // This sits on the weight sweep's innermost loop (one call per crossing
    // event per anchor): the single-shard layout — every legacy caller —
    // must stay allocation-free like the code it replaced, and the
    // multi-shard fan-out reuses per-session scratch.
    if (n == 1) {
      size_t count;
      if (ctx_->shard_busy_ms == nullptr) {
        count = CountAboveShard(0, w, threshold, anchor, stats);
      } else {
        Timer timer;
        count = CountAboveShard(0, w, threshold, anchor, stats);
        (*ctx_->shard_busy_ms)[0] += timer.ElapsedMillis();
      }
      if (!optimized_) ++stats->full_rescans;
      return count;
    }

    count_scratch_.assign(n, 0);
    node_scratch_.assign(n, 0);
    ForEachShard(*ctx_, [&](size_t s) {
      if (optimized_) {
        count_scratch_[s] = index_[s]->CountAbove(w, threshold, anchor.id);
        node_scratch_[s] = index_[s]->last_nodes_visited();
      } else {
        count_scratch_[s] = CountAboveScan(pts_[s], anchor, w);
      }
    });
    size_t total = 0;
    for (size_t s = 0; s < n; ++s) {
      total += count_scratch_[s];
      stats->index_nodes_visited += node_scratch_[s];
    }
    if (!optimized_) ++stats->full_rescans;  // One logical dataset rescan.
    return total;
  }

  void CollectCrossings(const PlanePoint& anchor, double wlo, double whi,
                        std::vector<double>* events,
                        PreferenceAdjustStats* stats) const override {
    const size_t n = ctx_->views.size();
    std::vector<std::vector<double>> parts(n);
    std::vector<size_t> nodes(n, 0);
    ForEachShard(*ctx_, [&](size_t s) {
      if (optimized_) {
        index_[s]->ForEachCrossing(anchor, wlo, whi, [&](const PlanePoint& p) {
          AppendCrossingWeight(anchor, p, wlo, whi, &parts[s]);
        });
        nodes[s] = index_[s]->last_nodes_visited();
      } else {
        for (const PlanePoint& p : pts_[s]) {
          AppendCrossingWeight(anchor, p, wlo, whi, &parts[s]);
        }
      }
    });
    // Union in shard order; the caller sorts + deduplicates the merged set,
    // so the final event sequence is layout-independent.
    for (size_t s = 0; s < n; ++s) {
      events->insert(events->end(), parts[s].begin(), parts[s].end());
      stats->index_nodes_visited += nodes[s];
    }
  }

 private:
  /// One shard's tie-aware above-threshold count, stats accumulated.
  size_t CountAboveShard(size_t s, double w, double threshold,
                         const PlanePoint& anchor,
                         PreferenceAdjustStats* stats) const {
    if (optimized_) {
      const size_t c = index_[s]->CountAbove(w, threshold, anchor.id);
      stats->index_nodes_visited += index_[s]->last_nodes_visited();
      return c;
    }
    return CountAboveScan(pts_[s], anchor, w);
  }

  const OracleContext* ctx_;
  const WhyNotOracle* oracle_;
  const Query* query_;
  bool optimized_;
  std::vector<std::vector<PlanePoint>> pts_;  // Basic mode only.
  std::vector<std::unique_ptr<ScorePlaneIndex>> index_;  // Optimized only.
  // Fan-out scratch (a session serves one algorithm invocation on one
  // thread; only the per-shard tasks inside one fan-out run concurrently,
  // each touching its own slot).
  mutable std::vector<size_t> count_scratch_;
  mutable std::vector<size_t> node_scratch_;
};

// --- Rank probe --------------------------------------------------------------

/// Per-shard progressive outscoring-count interval over that shard's
/// KcR-tree: exact counts from resolved leaves plus per-frontier-node
/// CountBounds. Tie-breaks compare GLOBAL ids, so the interval is the
/// shard's exact contribution to the global rank.
class ShardRankRefiner {
 public:
  ShardRankRefiner(const OracleShardView& view, const Scorer& scorer,
                   ObjectId target_global, double target_score,
                   KeywordAdaptStats* stats)
      : view_(&view),
        scorer_(&scorer),
        target_(target_global),
        target_score_(target_score),
        stats_(stats) {
    const KcRTree& tree = *view.kcr;
    PushNode(tree.root(), tree.node(tree.root()));
  }

  size_t count_lower() const { return exact_ + sum_lower_; }
  size_t count_upper() const { return exact_ + sum_upper_; }
  bool resolved() const {
    return frontier_.empty() || sum_lower_ == sum_upper_;
  }

  /// Descends the whole frontier one tree level ("when traversing the
  /// KcR-tree downwards, we get tighter bounds", §3.3): every frontier node
  /// is replaced by its children's bounds, leaves by exact tie-aware counts.
  /// No-op when resolved.
  void RefineLevel() {
    if (frontier_.empty()) return;
    const KcRTree& tree = *view_->kcr;
    std::vector<Frontier> previous;
    previous.swap(frontier_);
    sum_lower_ = 0;
    sum_upper_ = 0;
    for (const Frontier& f : previous) {
      const auto& node = tree.node(f.node);
      ++stats_->kcr_nodes_expanded;
      if (node.is_leaf) {
        for (const auto& e : node.entries) {
          const ObjectId gid = view_->to_global != nullptr
                                   ? (*view_->to_global)[e.id]
                                   : e.id;
          if (gid == target_) continue;
          ++stats_->objects_scored;
          if (OutranksTarget(scorer_->Score(e.id), gid, target_score_,
                             target_)) {
            ++exact_;
          }
        }
      } else {
        for (const auto& e : node.entries) {
          PushNode(e.id, tree.node(e.id));
        }
      }
    }
  }

 private:
  struct Frontier {
    KcRTree::NodeId node;
    CountBounds bounds;
  };

  void PushNode(KcRTree::NodeId id, const KcRTree::Node& node) {
    if (node.summary.cnt == 0) return;
    const CountBounds b =
        BoundOutscoringCount(*scorer_, node.rect, node.summary, target_score_);
    if (b.upper == 0) return;  // Nothing below can outrank: drop.
    if (b.lower == b.upper) {
      exact_ += b.lower;  // Pinned without descending.
      // Note: the target itself is never counted by the lower bound (its own
      // score cannot strictly exceed itself), so this is tie-safe.
      return;
    }
    frontier_.push_back(Frontier{id, b});
    sum_lower_ += b.lower;
    sum_upper_ += b.upper;
  }

  const OracleShardView* view_;
  const Scorer* scorer_;
  ObjectId target_;
  double target_score_;
  KeywordAdaptStats* stats_;
  std::vector<Frontier> frontier_;
  size_t exact_ = 0;
  size_t sum_lower_ = 0;
  size_t sum_upper_ = 0;
};

/// The RankProbe over N shard refiners: rank interval = 1 + elementwise sum
/// of the shard count intervals; RefineLevel descends every unresolved
/// shard one level (in parallel on the pool). Owns a copy of the candidate
/// query (the per-shard scorers point into it), so it must never be moved —
/// it lives behind the unique_ptr ProbeRank returns.
class KcrRankProbe : public RankProbe {
 public:
  KcrRankProbe(const OracleContext* ctx, Query candidate,
               ObjectId target_global, double target_score,
               KeywordAdaptStats* stats)
      : ctx_(ctx), query_(std::move(candidate)), stats_(stats) {
    const size_t n = ctx_->views.size();
    shard_stats_.resize(n);
    scorers_.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      scorers_.emplace_back(*ctx_->views[s].store, query_, ctx_->dist_norm);
    }
    // Built inline: per-shard construction is one root-node bound
    // computation, far below the pool's dispatch + latch cost (probes are
    // created once per candidate per missing object — a hot loop).
    refiners_.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      assert(ctx_->views[s].kcr != nullptr &&
             "ProbeRank requires the KcR-tree on every shard");
      refiners_.push_back(std::make_unique<ShardRankRefiner>(
          ctx_->views[s], scorers_[s], target_global, target_score,
          &shard_stats_[s]));
    }
  }

  KcrRankProbe(const KcrRankProbe&) = delete;
  KcrRankProbe& operator=(const KcrRankProbe&) = delete;

  ~KcrRankProbe() override {
    for (const KeywordAdaptStats& s : shard_stats_) {
      stats_->kcr_nodes_expanded += s.kcr_nodes_expanded;
      stats_->objects_scored += s.objects_scored;
    }
  }

  size_t lower() const override {
    size_t sum = 0;
    for (const auto& r : refiners_) sum += r->count_lower();
    return sum + 1;
  }
  size_t upper() const override {
    size_t sum = 0;
    for (const auto& r : refiners_) sum += r->count_upper();
    return sum + 1;
  }
  bool resolved() const override {
    for (const auto& r : refiners_) {
      if (!r->resolved()) return false;
    }
    return true;
  }
  void RefineLevel() override {
    // Only the shards with open frontiers do work; dispatching resolved
    // ones would spend pool scheduling on no-ops in the hottest /whynot
    // loop (one call per candidate per refinement level).
    std::vector<size_t> unresolved;
    for (size_t s = 0; s < refiners_.size(); ++s) {
      if (!refiners_[s]->resolved()) unresolved.push_back(s);
    }
    ForShards(*ctx_, unresolved,
              [&](size_t s) { refiners_[s]->RefineLevel(); });
  }

 private:
  const OracleContext* ctx_;
  Query query_;
  std::vector<Scorer> scorers_;  // One per shard, bound to query_.
  std::vector<std::unique_ptr<ShardRankRefiner>> refiners_;
  std::vector<KeywordAdaptStats> shard_stats_;  // Flushed into stats_ at end.
  KeywordAdaptStats* stats_;
};

}  // namespace

// --- ContextWhyNotOracle -----------------------------------------------------

size_t ContextWhyNotOracle::size() const {
  size_t total = 0;
  for (const OracleShardView& v : ctx_.views) total += v.store->size();
  return total;
}

size_t ContextWhyNotOracle::Rank(const Query& query,
                                 ObjectId global_id) const {
  const double target_score =
      ScorePartsOf(query, ctx_.dist_norm, Object(global_id)).score;
  const size_t n = ctx_.views.size();
  std::vector<size_t> counts(n, 0);
  ForEachShard(ctx_, [&](size_t s) {
    const OracleShardView& view = ctx_.views[s];
    assert(view.setr != nullptr && "Rank requires the SetR-tree");
    const Scorer scorer(*view.store, query, ctx_.dist_norm);
    counts[s] = CountOutscoring(*view.store, *view.setr, scorer, target_score,
                                global_id, view.to_global);
  });
  size_t above = 0;
  for (size_t c : counts) above += c;
  return above + 1;
}

size_t ContextWhyNotOracle::OutscoringCount(const Query& query,
                                            ObjectId global_id,
                                            KeywordAdaptStats* stats) const {
  const double target_score =
      ScorePartsOf(query, ctx_.dist_norm, Object(global_id)).score;
  const size_t n = ctx_.views.size();
  std::vector<size_t> counts(n, 0);
  ForEachShard(ctx_, [&](size_t s) {
    const Scorer scorer(*ctx_.views[s].store, query, ctx_.dist_norm);
    counts[s] = ScanOutscoring(ctx_.views[s], scorer, target_score, global_id);
  });
  size_t above = 0;
  for (size_t s = 0; s < n; ++s) {
    above += counts[s];
    stats->objects_scored += ctx_.views[s].store->size();
  }
  return above;
}

std::unique_ptr<ScorePlaneSession> ContextWhyNotOracle::PrepareScorePlane(
    const Query& query, PrefAdjustMode mode) const {
  return std::make_unique<MultiShardScorePlaneSession>(&ctx_, this, &query,
                                                       mode);
}

std::unique_ptr<RankProbe> ContextWhyNotOracle::ProbeRank(
    const Query& candidate, ObjectId global_id,
    KeywordAdaptStats* stats) const {
  const double target_score =
      ScorePartsOf(candidate, ctx_.dist_norm, Object(global_id)).score;
  return std::make_unique<KcrRankProbe>(&ctx_, candidate, global_id,
                                        target_score, stats);
}

// --- LocalWhyNotOracle -------------------------------------------------------

LocalWhyNotOracle::LocalWhyNotOracle(const ObjectStore& store,
                                     const SetRTree* setr, const KcRTree* kcr)
    : store_(&store) {
  ctx_.views.push_back(OracleShardView{&store, setr, kcr, nullptr});
  ctx_.all_shards.push_back(0);
  ctx_.dist_norm = store.BoundsDiagonal();
  if (setr != nullptr) topk_.emplace(store, *setr);
}

LocalWhyNotOracle::LocalWhyNotOracle(const Corpus& corpus)
    : LocalWhyNotOracle(corpus.store(), &corpus.setr(),
                        corpus.has_kcr() ? &corpus.kcr() : nullptr) {}

TopKResult LocalWhyNotOracle::TopK(const Query& query, TopKStats* stats) const {
  assert(topk_.has_value() && "TopK requires the SetR-tree");
  return topk_->Query(query, stats);
}

}  // namespace yask
