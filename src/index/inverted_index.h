// Copyright (c) 2026 The YASK reproduction authors.
// A classic inverted index (keyword -> sorted posting list of object ids).
// Serves as the textual half of the baseline top-k engine in experiment E2
// and as a helper for picking query keywords that certainly match something.

#ifndef YASK_INDEX_INVERTED_INDEX_H_
#define YASK_INDEX_INVERTED_INDEX_H_

#include <vector>

#include "src/common/keyword_set.h"
#include "src/storage/object_store.h"

namespace yask {

/// Immutable-after-build inverted index over an ObjectStore.
class InvertedIndex {
 public:
  /// Builds postings for every object in the store; O(total keywords).
  explicit InvertedIndex(const ObjectStore& store);

  /// Reassembles an index from raw posting lists (the snapshot-load hook).
  /// Each list must be ascending and deduplicated, as Postings() guarantees.
  static InvertedIndex FromPostings(std::vector<std::vector<ObjectId>> postings);

  /// All posting lists, indexed by TermId (the snapshot-save hook).
  const std::vector<std::vector<ObjectId>>& postings() const {
    return postings_;
  }

  /// Posting list (ascending object ids) for a term; empty for unknown terms.
  const std::vector<ObjectId>& Postings(TermId term) const;

  /// Union of the posting lists of all query keywords: every object with at
  /// least one matching keyword, ascending, deduplicated.
  std::vector<ObjectId> Candidates(const KeywordSet& query_doc) const;

  /// Document frequency of a term (posting-list length).
  size_t DocumentFrequency(TermId term) const;

  size_t MemoryUsageBytes() const;

 private:
  InvertedIndex() = default;  // For FromPostings().

  std::vector<std::vector<ObjectId>> postings_;  // Indexed by TermId.
  std::vector<ObjectId> empty_;
};

}  // namespace yask

#endif  // YASK_INDEX_INVERTED_INDEX_H_
