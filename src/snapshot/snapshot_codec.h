// Copyright (c) 2026 The YASK reproduction authors.
// Per-component Save/Load codecs plus the whole-server bundle API.
//
// A snapshot captures the server's warm state — the object table D, the
// shared Vocabulary, and the SetR-tree / KcR-tree / inverted index built
// over it — so a restarting process (or a new replica) loads it in one
// sequential pass instead of re-interning, re-sorting and re-summarising.
//
// Sharing discipline: the vocabulary is serialised exactly once (its own
// section); LoadSnapshot() deserialises it first and hands the *same*
// shared_ptr<Vocabulary> to the restored ObjectStore, so no token is ever
// re-interned and term ids are bit-identical to the saved process.
//
// R-tree encoding: node structure (leaf flags + child/object ids) and node
// summaries are stored; rects and parent pointers are reconstructed from the
// store's points while decoding (children are written before parents), which
// halves the file size and still skips the expensive part of a rebuild — the
// STR sorts and the bottom-up keyword-set/count-map merges.

#ifndef YASK_SNAPSHOT_SNAPSHOT_CODEC_H_
#define YASK_SNAPSHOT_SNAPSHOT_CODEC_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/geometry.h"
#include "src/common/status.h"
#include "src/common/vocabulary.h"
#include "src/index/inverted_index.h"
#include "src/index/kcr_tree.h"
#include "src/index/setr_tree.h"
#include "src/snapshot/snapshot_io.h"
#include "src/storage/object_store.h"

namespace yask {

// --- Component codecs --------------------------------------------------------
// Save* appends one section payload; Load* decodes one. Loaders never crash
// on corrupt bytes: they validate counts, id ranges and invariants and
// return InvalidArgument.

void SaveVocabulary(const Vocabulary& vocab, BufWriter* out);
Status LoadVocabulary(BufReader* in, Vocabulary* vocab);

/// Objects only; the vocabulary travels in its own section. `store` passed
/// to the loader must be freshly constructed over the already-loaded shared
/// vocabulary (that is the no-re-interning guarantee).
void SaveObjectStore(const ObjectStore& store, BufWriter* out);
Status LoadObjectStore(BufReader* in, ObjectStore* store);

void SaveInvertedIndex(const InvertedIndex& index, BufWriter* out);
Result<InvertedIndex> LoadInvertedIndex(BufReader* in, size_t vocab_size,
                                        size_t object_count);

/// The tree passed to a loader must be freshly constructed over the restored
/// store; its arena is replaced wholesale (RTreeT::AdoptArena).
void SaveSetRTree(const SetRTree& tree, BufWriter* out);
Status LoadSetRTree(BufReader* in, SetRTree* tree);

void SaveKcRTree(const KcRTree& tree, BufWriter* out);
Status LoadKcRTree(BufReader* in, KcRTree* tree);

// --- Shard manifest ----------------------------------------------------------

/// Extra section of a per-shard snapshot file: everything a loader needs to
/// reassemble a ShardedCorpus from N shard files. `global_ids[i]` is the
/// global ObjectId of the shard store's local object i (strictly ascending —
/// shards are filled in global id order). `global_bounds` is the MBR of the
/// *whole* partitioned dataset; its diagonal is the SDist normaliser that
/// keeps per-shard scores bit-identical to an unsharded corpus.
struct ShardManifest {
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  Rect global_bounds = Rect::Empty();
  std::vector<ObjectId> global_ids;
  /// Human-readable router description ("grid 2x2", "hash"); informational.
  std::string router;
};

void SaveShardManifest(const ShardManifest& manifest, BufWriter* out);
Result<ShardManifest> LoadShardManifest(BufReader* in);

// --- Whole-server bundle -----------------------------------------------------

/// The restored warm state. The store owns the vocabulary; the indexes point
/// at the store, so keep the bundle together (moving the struct is fine —
/// the store lives behind a unique_ptr, its address is stable).
struct SnapshotBundle {
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<SetRTree> setr;
  std::unique_ptr<KcRTree> kcr;
  std::unique_ptr<InvertedIndex> inverted;
  /// Non-null only for per-shard snapshot files.
  std::unique_ptr<ShardManifest> shard;
};

/// Serialises the store (+ vocabulary) and whichever indexes are non-null
/// into one snapshot file. A non-null `shard` manifest marks the file as one
/// shard of a partitioned corpus. Returns the file size in bytes.
Result<uint64_t> WriteSnapshot(const std::string& path,
                               const ObjectStore& store,
                               const SetRTree* setr = nullptr,
                               const KcRTree* kcr = nullptr,
                               const InvertedIndex* inverted = nullptr,
                               const ShardManifest* shard = nullptr);

/// Loads a snapshot written by WriteSnapshot. Bundle members for indexes the
/// file does not contain are left null; store and vocabulary are mandatory.
Result<SnapshotBundle> LoadSnapshot(const std::string& path);

// --- Inspection --------------------------------------------------------------

/// One row of `dataset_tool inspect-snapshot`.
struct SnapshotSectionReport {
  SectionId id;
  std::string name;
  uint64_t size = 0;
  uint32_t crc32 = 0;
  /// Leading element count of the payload (words, objects, terms, nodes);
  /// -1 when the payload failed its checksum.
  int64_t item_count = -1;
};

struct SnapshotReport {
  uint32_t format_version = 0;
  uint64_t file_size = 0;
  std::vector<SnapshotSectionReport> sections;
  /// The decoded shard_manifest section — engaged when the file is one shard
  /// of a partitioned corpus and the section decodes cleanly (`dataset_tool
  /// inspect-snapshot` prints it: shard index/count, router, object ids).
  std::optional<ShardManifest> shard;
};

/// Validates the container and summarises every section without
/// materialising the store or the trees. The shard manifest (when present)
/// is small and is decoded in full.
Result<SnapshotReport> InspectSnapshot(const std::string& path);

}  // namespace yask

#endif  // YASK_SNAPSHOT_SNAPSHOT_CODEC_H_
