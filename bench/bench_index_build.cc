// Experiment E3 (DESIGN.md): index construction cost and footprint.
//
// Regenerates the index substrate comparison: STR bulk load versus repeated
// insertion, for the plain R-tree, the SetR-tree and the KcR-tree, with the
// per-index memory footprint as counters.
//
// Expected shape: bulk load is several times faster than insertion; the
// KcR-tree costs the most memory (keyword->count maps at every node), the
// plain R-tree the least.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace yask {
namespace bench {
namespace {

template <typename Tree>
void BuildBulk(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ObjectStore& store = SharedDataset(n);
  size_t mem = 0;
  for (auto _ : state) {
    Tree tree(&store);
    tree.BulkLoad();
    benchmark::DoNotOptimize(tree.root());
    mem = tree.MemoryUsageBytes();
  }
  state.counters["bytes"] = benchmark::Counter(static_cast<double>(mem));
  state.counters["bytes/object"] =
      benchmark::Counter(static_cast<double>(mem) / n);
}

template <typename Tree>
void BuildInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ObjectStore& store = SharedDataset(n);
  for (auto _ : state) {
    Tree tree(&store);
    for (ObjectId id = 0; id < n; ++id) tree.Insert(id);
    benchmark::DoNotOptimize(tree.root());
  }
}

void BM_Build_RTree_Bulk(benchmark::State& state) { BuildBulk<RTree>(state); }
void BM_Build_SetR_Bulk(benchmark::State& state) { BuildBulk<SetRTree>(state); }
void BM_Build_KcR_Bulk(benchmark::State& state) { BuildBulk<KcRTree>(state); }
void BM_Build_RTree_Insert(benchmark::State& state) {
  BuildInsert<RTree>(state);
}
void BM_Build_SetR_Insert(benchmark::State& state) {
  BuildInsert<SetRTree>(state);
}

BENCHMARK(BM_Build_RTree_Bulk)->ArgName("N")->Arg(10000)->Arg(100000);
BENCHMARK(BM_Build_SetR_Bulk)->ArgName("N")->Arg(10000)->Arg(100000);
BENCHMARK(BM_Build_KcR_Bulk)->ArgName("N")->Arg(10000)->Arg(100000);
BENCHMARK(BM_Build_RTree_Insert)->ArgName("N")->Arg(10000)->Arg(50000);
BENCHMARK(BM_Build_SetR_Insert)->ArgName("N")->Arg(10000);

void BM_Build_InvertedIndex(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const ObjectStore& store = SharedDataset(n);
  size_t mem = 0;
  for (auto _ : state) {
    InvertedIndex index(store);
    benchmark::DoNotOptimize(index.Postings(0).data());
    mem = index.MemoryUsageBytes();
  }
  state.counters["bytes"] = benchmark::Counter(static_cast<double>(mem));
}
BENCHMARK(BM_Build_InvertedIndex)->ArgName("N")->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace bench
}  // namespace yask

BENCHMARK_MAIN();
