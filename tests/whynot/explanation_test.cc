#include "src/whynot/explanation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/query/scoring.h"
#include "src/query/topk_engine.h"
#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

/// Hand-built scenario: a cluster of perfect matches near the query, one
/// far-away perfect keyword match, one near object with alien keywords.
class ExplanationScenario : public ::testing::Test {
 protected:
  void SetUp() override {
    Vocabulary* v = store_.mutable_vocab();
    coffee_ = v->Intern("coffee");
    wifi_ = v->Intern("wifi");
    pizza_ = v->Intern("pizza");
    // 5 perfect matches at the query point.
    for (int i = 0; i < 5; ++i) {
      store_.Add(Point{0.5, 0.5}, KeywordSet({coffee_, wifi_}),
                 "good" + std::to_string(i));
    }
    far_match_ = store_.Add(Point{0.95, 0.95},
                            KeywordSet({coffee_, wifi_}), "FarCafe");
    near_mismatch_ =
        store_.Add(Point{0.5, 0.5}, KeywordSet({pizza_}), "PizzaNextDoor");
    far_mismatch_ =
        store_.Add(Point{0.05, 0.95}, KeywordSet({pizza_}), "RemotePizza");
    // Spread anchor points so the bounds diagonal is stable.
    store_.Add(Point{0.0, 0.0}, KeywordSet({coffee_}), "anchor0");
    store_.Add(Point{1.0, 1.0}, KeywordSet({coffee_}), "anchor1");

    tree_ = std::make_unique<SetRTree>(&store_);
    tree_->BulkLoad();

    query_.loc = Point{0.5, 0.5};
    query_.doc = KeywordSet({coffee_, wifi_});
    query_.k = 3;
  }

  ObjectStore store_;
  std::unique_ptr<SetRTree> tree_;
  Query query_;
  TermId coffee_, wifi_, pizza_;
  ObjectId far_match_, near_mismatch_, far_mismatch_;
};

TEST_F(ExplanationScenario, FarKeywordMatchBlamesDistance) {
  auto result = ExplainMissing(store_, *tree_, query_, {far_match_});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  const MissingObjectExplanation& e = result->at(0);
  EXPECT_GT(e.rank, query_.k);
  EXPECT_DOUBLE_EQ(e.tsim, 1.0);
  EXPECT_TRUE(e.reason == MissingReason::kTooFar ||
              e.reason == MissingReason::kNarrowlyOutranked)
      << MissingReasonToString(e.reason);
  if (e.reason == MissingReason::kTooFar) {
    EXPECT_EQ(e.recommendation,
              RefinementRecommendation::kPreferenceAdjustment);
  }
  EXPECT_FALSE(e.text.empty());
  EXPECT_NE(e.text.find("FarCafe"), std::string::npos);
}

TEST_F(ExplanationScenario, NearMismatchBlamesKeywords) {
  auto result = ExplainMissing(store_, *tree_, query_, {near_mismatch_});
  ASSERT_TRUE(result.ok());
  const MissingObjectExplanation& e = result->at(0);
  EXPECT_DOUBLE_EQ(e.tsim, 0.0);
  EXPECT_EQ(e.reason, MissingReason::kKeywordMismatch)
      << MissingReasonToString(e.reason);
  EXPECT_EQ(e.recommendation, RefinementRecommendation::kKeywordAdaption);
}

TEST_F(ExplanationScenario, FarMismatchBlamesBoth) {
  auto result = ExplainMissing(store_, *tree_, query_, {far_mismatch_});
  ASSERT_TRUE(result.ok());
  const MissingObjectExplanation& e = result->at(0);
  EXPECT_EQ(e.reason, MissingReason::kBoth)
      << MissingReasonToString(e.reason);
}

TEST_F(ExplanationScenario, InResultObjectReported) {
  SetRTopKEngine engine(store_, *tree_);
  const TopKResult top = engine.Query(query_);
  auto result = ExplainMissing(store_, *tree_, query_, {top[0].id});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->at(0).reason, MissingReason::kInResult);
  EXPECT_EQ(result->at(0).recommendation, RefinementRecommendation::kNone);
  EXPECT_EQ(result->at(0).rank, 1u);
}

TEST_F(ExplanationScenario, RankMatchesIndependentComputation) {
  auto result = ExplainMissing(store_, *tree_, query_,
                               {far_match_, near_mismatch_});
  ASSERT_TRUE(result.ok());
  for (const MissingObjectExplanation& e : *result) {
    size_t brute = 1;
    Scorer scorer(store_, query_);
    const double s = scorer.Score(e.id);
    for (const SpatialObject& o : store_.objects()) {
      if (o.id == e.id) continue;
      const double so = scorer.Score(o);
      if (so > s || (so == s && o.id < e.id)) ++brute;
    }
    EXPECT_EQ(e.rank, brute);
  }
}

TEST_F(ExplanationScenario, ErrorsOnBadInput) {
  EXPECT_FALSE(ExplainMissing(store_, *tree_, query_, {}).ok());
  EXPECT_FALSE(ExplainMissing(store_, *tree_, query_, {123456}).ok());
  Query bad = query_;
  bad.doc = KeywordSet();
  EXPECT_FALSE(ExplainMissing(store_, *tree_, bad, {far_match_}).ok());
}

TEST(ExplanationGenerated, WorksOnSyntheticDataset) {
  DatasetSpec spec;
  spec.num_objects = 1000;
  const ObjectStore store = GenerateDataset(spec);
  SetRTree tree(&store);
  tree.BulkLoad();
  Rng rng(5);
  Query q;
  q.loc = SampleQueryLocation(store, &rng);
  q.doc = SampleQueryKeywords(store, 3, &rng);
  q.k = 5;
  // Explain 5 random objects; every explanation is internally consistent.
  std::vector<ObjectId> missing;
  for (int i = 0; i < 5; ++i) {
    missing.push_back(static_cast<ObjectId>(rng.NextBounded(store.size())));
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  auto result = ExplainMissing(store, tree, q, missing);
  ASSERT_TRUE(result.ok());
  for (const MissingObjectExplanation& e : *result) {
    EXPECT_EQ(e.reason == MissingReason::kInResult, e.rank <= q.k);
    EXPECT_FALSE(e.text.empty());
    EXPECT_GE(e.score, 0.0);
    EXPECT_LE(e.score, 1.0);
  }
}

}  // namespace
}  // namespace yask
