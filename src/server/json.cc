#include "src/server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace yask {

namespace {
const JsonValue& NullValue() {
  static const JsonValue* kNull = new JsonValue();
  return *kNull;
}
}  // namespace

const JsonValue& JsonValue::Get(const std::string& key) const {
  auto it = object_.find(key);
  if (it == object_.end()) return NullValue();
  return it->second;
}

bool JsonValue::Has(const std::string& key) const {
  return object_.find(key) != object_.end();
}

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  object_[std::move(key)] = std::move(value);
  return *this;
}

const JsonValue& JsonValue::At(size_t i) const {
  if (i >= array_.size()) return NullValue();
  return array_[i];
}

JsonValue& JsonValue::Append(JsonValue value) {
  array_.push_back(std::move(value));
  return *this;
}

size_t JsonValue::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

std::string JsonEscape(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonValue::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::abs(number_) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", number_);
        *out += buf;
      } else if (std::isfinite(number_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", number_);
        *out += buf;
      } else {
        *out += "null";  // JSON has no NaN/Inf.
      }
      break;
    }
    case Type::kString:
      *out += JsonEscape(string_);
      break;
    case Type::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) *out += ',';
        first = false;
        v.DumpTo(out);
      }
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) *out += ',';
        first = false;
        *out += JsonEscape(k);
        *out += ':';
        v.DumpTo(out);
      }
      *out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

/// Recursive-descent JSON parser with a depth guard.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    SkipWs();
    JsonValue v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing garbage at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Fail(const std::string& what) {
    return Status::InvalidArgument(what + " at offset " + std::to_string(pos_));
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') return ParseString(out);
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == 'n') return ParseNull(out);
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    *out = JsonValue::MakeObject();
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      JsonValue key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (Status s = ParseString(&key); !s.ok()) return s;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      out->Set(key.as_string(), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    *out = JsonValue::MakeArray();
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      out->Append(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(JsonValue* out) {
    ++pos_;  // '"'
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad hex digit in \\u escape");
              }
            }
            // UTF-8 encode (BMP only; surrogate pairs are passed through as
            // two separate escapes, adequate for this protocol).
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
        continue;
      }
      s += c;
    }
    return Fail("unterminated string");
  }

  Status ParseBool(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      *out = JsonValue(true);
      return Status::OK();
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      *out = JsonValue(false);
      return Status::OK();
    }
    return Fail("bad literal");
  }

  Status ParseNull(JsonValue* out) {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      *out = JsonValue();
      return Status::OK();
    }
    return Fail("bad literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("bad number");
    *out = JsonValue(v);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace yask
