#include "src/whynot/why_not_engine.h"

#include <thread>

#include "src/common/trace.h"
#include "src/corpus/sharded_whynot_oracle.h"
#include "src/query/ranking.h"

namespace yask {

WhyNotEngine::WhyNotEngine(const Corpus& corpus)
    : oracle_(std::make_unique<LocalWhyNotOracle>(corpus)) {}

WhyNotEngine::WhyNotEngine(const ShardedCorpus& corpus)
    : oracle_(std::make_unique<ShardedWhyNotOracle>(corpus)) {}

WhyNotEngine::WhyNotEngine(std::unique_ptr<const WhyNotOracle> oracle)
    : oracle_(std::move(oracle)) {}

Result<WhyNotAnswer> WhyNotEngine::Answer(
    const Query& query, const std::vector<ObjectId>& missing,
    const WhyNotOptions& options) const {
  WhyNotAnswer answer;

  // Stage spans are recorded in EVERY corpus layout (local, sharded,
  // remote), so a trace's skeleton is layout-independent; remote layouts
  // additionally hang per-replica rpc spans beneath them.
  {
    ScopedSpan span("whynot/explain");
    auto explanations = ExplainMissing(*oracle_, query, missing);
    if (!explanations.ok()) return explanations.status();
    answer.explanations = std::move(explanations).value();
  }

  PreferenceAdjustOptions po;
  po.lambda = options.lambda;
  po.mode = options.pref_mode;
  KeywordAdaptOptions ko;
  ko.lambda = options.lambda;
  ko.mode = options.kw_mode;

  if (options.run_preference_adjustment && options.run_keyword_adaption &&
      options.overlap_stages) {
    // Overlap the Eqn. (3) weight sweep with the Eqn. (4) probe fan-outs.
    // The two refinements share no mutable state (each opens its own oracle
    // sessions; a remote oracle's channels/health/meters are thread-safe),
    // so the keyword search runs on a helper thread while the preference
    // sweep runs here — a why-not question costs max(pref, kw) instead of
    // pref + kw of wire waiting. Both finish before anything is read;
    // errors surface preference-first like the sequential path.
    std::optional<Result<RefinedKeywordQuery>> kw;
    const TraceContext trace_ctx = CurrentTraceContext();
    std::thread kw_thread([&] {
      TraceContextScope scope(trace_ctx);
      ScopedSpan span("whynot/keyword");
      kw.emplace(AdaptKeywords(*oracle_, query, missing, ko));
    });
    Result<RefinedPreferenceQuery> pref = [&] {
      ScopedSpan span("whynot/preference");
      return AdjustPreference(*oracle_, query, missing, po);
    }();
    kw_thread.join();
    if (!pref.ok()) return pref.status();
    answer.preference = std::move(pref).value();
    if (!kw->ok()) return kw->status();
    answer.keyword = std::move(*kw).value();
  } else {
    if (options.run_preference_adjustment) {
      ScopedSpan span("whynot/preference");
      auto refined = AdjustPreference(*oracle_, query, missing, po);
      if (!refined.ok()) return refined.status();
      answer.preference = std::move(refined).value();
    }
    if (options.run_keyword_adaption) {
      ScopedSpan span("whynot/keyword");
      auto refined = AdaptKeywords(*oracle_, query, missing, ko);
      if (!refined.ok()) return refined.status();
      answer.keyword = std::move(refined).value();
    }
  }

  // Recommend the cheaper model; ties prefer preference adjustment (it does
  // not alter what the user asked for, only how it is weighted).
  const bool have_pref = answer.preference.has_value();
  const bool have_kw = answer.keyword.has_value();
  if (have_pref && answer.preference->already_in_result) {
    answer.recommended = RefinementModel::kNone;
  } else if (have_kw && answer.keyword->already_in_result) {
    answer.recommended = RefinementModel::kNone;
  } else if (have_pref && have_kw) {
    answer.recommended =
        answer.preference->penalty.value <= answer.keyword->penalty.value
            ? RefinementModel::kPreference
            : RefinementModel::kKeyword;
  } else if (have_pref) {
    answer.recommended = RefinementModel::kPreference;
  } else if (have_kw) {
    answer.recommended = RefinementModel::kKeyword;
  }

  ScopedSpan span("whynot/refined_topk");
  switch (answer.recommended) {
    case RefinementModel::kPreference:
      answer.refined_result = oracle_->TopK(answer.preference->refined);
      break;
    case RefinementModel::kKeyword:
      answer.refined_result = oracle_->TopK(answer.keyword->refined);
      break;
    case RefinementModel::kNone:
      answer.refined_result = oracle_->TopK(query);
      break;
  }
  return answer;
}

Result<CombinedRefinement> WhyNotEngine::CombineRefinements(
    const Query& query, const std::vector<ObjectId>& missing,
    const WhyNotOptions& options) const {
  PreferenceAdjustOptions po;
  po.lambda = options.lambda;
  po.mode = options.pref_mode;
  KeywordAdaptOptions ko;
  ko.lambda = options.lambda;
  ko.mode = options.kw_mode;

  // Order A: preference first, keyword adaption on the adjusted query.
  auto run_pref_first = [&]() -> Result<CombinedRefinement> {
    auto pref = [&] {
      ScopedSpan span("whynot/preference", "order=pref-first");
      return AdjustPreference(*oracle_, query, missing, po);
    }();
    if (!pref.ok()) return pref.status();
    auto kw = [&] {
      ScopedSpan span("whynot/keyword", "order=pref-first");
      return AdaptKeywords(*oracle_, pref->refined, missing, ko);
    }();
    if (!kw.ok()) return kw.status();
    CombinedRefinement out;
    out.refined = kw->refined;
    out.preference_penalty = pref->penalty;
    out.keyword_penalty = kw->penalty;
    out.total_penalty = pref->penalty.value + kw->penalty.value;
    out.preference_first = true;
    out.original_rank = pref->original_rank;
    out.refined_rank = kw->refined_rank;
    return out;
  };
  // Order B: keyword adaption first, preference adjustment after.
  auto run_kw_first = [&]() -> Result<CombinedRefinement> {
    auto kw = [&] {
      ScopedSpan span("whynot/keyword", "order=kw-first");
      return AdaptKeywords(*oracle_, query, missing, ko);
    }();
    if (!kw.ok()) return kw.status();
    auto pref = [&] {
      ScopedSpan span("whynot/preference", "order=kw-first");
      return AdjustPreference(*oracle_, kw->refined, missing, po);
    }();
    if (!pref.ok()) return pref.status();
    CombinedRefinement out;
    out.refined = pref->refined;
    out.preference_penalty = pref->penalty;
    out.keyword_penalty = kw->penalty;
    out.total_penalty = pref->penalty.value + kw->penalty.value;
    out.preference_first = false;
    out.original_rank = kw->original_rank;
    out.refined_rank = pref->refined_rank;
    return out;
  };

  auto a = run_pref_first();
  if (!a.ok()) return a.status();
  auto b = run_kw_first();
  if (!b.ok()) return b.status();
  // Lower total penalty wins; ties prefer the preference-first order (it
  // alters the user's stated keywords later, i.e. only if it pays).
  return b->total_penalty < a->total_penalty ? std::move(b) : std::move(a);
}

}  // namespace yask
