#include "src/storage/dataset_generator.h"

#include <gtest/gtest.h>

namespace yask {
namespace {

TEST(DatasetGeneratorTest, HonoursObjectCount) {
  DatasetSpec spec;
  spec.num_objects = 1234;
  const ObjectStore store = GenerateDataset(spec);
  EXPECT_EQ(store.size(), 1234u);
}

TEST(DatasetGeneratorTest, KeywordSizesWithinSpec) {
  DatasetSpec spec;
  spec.num_objects = 2000;
  spec.min_keywords = 4;
  spec.max_keywords = 7;
  spec.vocabulary_size = 500;
  const ObjectStore store = GenerateDataset(spec);
  for (const SpatialObject& o : store.objects()) {
    EXPECT_GE(o.doc.size(), 1u);
    EXPECT_LE(o.doc.size(), 7u);
  }
}

TEST(DatasetGeneratorTest, LocationsInsideUnitSquare) {
  for (auto dist : {SpatialDistribution::kUniform,
                    SpatialDistribution::kClustered}) {
    DatasetSpec spec;
    spec.num_objects = 2000;
    spec.spatial = dist;
    const ObjectStore store = GenerateDataset(spec);
    for (const SpatialObject& o : store.objects()) {
      EXPECT_GE(o.loc.x, 0.0);
      EXPECT_LE(o.loc.x, 1.0);
      EXPECT_GE(o.loc.y, 0.0);
      EXPECT_LE(o.loc.y, 1.0);
    }
  }
}

TEST(DatasetGeneratorTest, DeterministicForEqualSeeds) {
  DatasetSpec spec;
  spec.num_objects = 500;
  const ObjectStore a = GenerateDataset(spec);
  const ObjectStore b = GenerateDataset(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.Get(i).loc, b.Get(i).loc);
    EXPECT_EQ(a.Get(i).doc, b.Get(i).doc);
  }
}

TEST(DatasetGeneratorTest, DifferentSeedsDiffer) {
  DatasetSpec spec;
  spec.num_objects = 500;
  const ObjectStore a = GenerateDataset(spec);
  spec.seed = 43;
  const ObjectStore b = GenerateDataset(spec);
  size_t same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.Get(i).loc == b.Get(i).loc) ++same;
  }
  EXPECT_LT(same, 10u);
}

TEST(DatasetGeneratorTest, ZipfSkewsKeywordFrequencies) {
  DatasetSpec spec;
  spec.num_objects = 5000;
  spec.keyword_zipf = 1.2;
  spec.vocabulary_size = 200;
  const ObjectStore store = GenerateDataset(spec);
  std::vector<size_t> freq(store.vocab().size(), 0);
  for (const SpatialObject& o : store.objects()) {
    for (TermId t : o.doc) ++freq[t];
  }
  // kw0 is the most popular rank; it should dominate mid-tail ranks.
  EXPECT_GT(freq[0], 4 * std::max<size_t>(freq[100], 1));
}

TEST(DatasetGeneratorTest, VocabularyNamedByRank) {
  DatasetSpec spec;
  spec.vocabulary_size = 10;
  spec.num_objects = 10;
  const ObjectStore store = GenerateDataset(spec);
  EXPECT_EQ(store.vocab().size(), 10u);
  EXPECT_EQ(store.vocab().Word(0), "kw0");
  EXPECT_EQ(store.vocab().Word(9), "kw9");
}

TEST(SampleQueryTest, LocationNearDataAndKeywordsNonEmpty) {
  DatasetSpec spec;
  spec.num_objects = 1000;
  const ObjectStore store = GenerateDataset(spec);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Point p = SampleQueryLocation(store, &rng);
    EXPECT_GE(p.x, -0.2);
    EXPECT_LE(p.x, 1.2);
    const KeywordSet kw = SampleQueryKeywords(store, 3, &rng);
    EXPECT_GE(kw.size(), 1u);
    EXPECT_LE(kw.size(), 3u);
  }
}

}  // namespace
}  // namespace yask
