// Copyright (c) 2026 The YASK reproduction authors.
// The YASK web service (§3.1-§3.3): binds the query processor (top-k engine +
// why-not engine) to HTTP endpoints, caches users' initial queries so that
// follow-up why-not questions can reference them ("The server caches users'
// initial spatial keyword queries until users give up asking follow-up
// 'why-not' questions"), and keeps the query log of Panel 5.
//
// Serving state comes from the corpus layer (src/corpus/): one Corpus (a
// single full replica), a ShardedCorpus (the in-process scale-out layout),
// or a RemoteCorpus (the coordinator role: shards live in yask_shard_server
// processes and every top-k / why-not fan-out goes over the wire through the
// same oracle seam — see docs/architecture.md, "Remote deployment"). The
// full HTTP contract is served in all modes and answers are bit-identical
// across them; in remote mode each shard may be a replica set, a replica
// failure mid-request fails over transparently (sessions are re-established
// and replayed on a live sibling), and only a shard with NO live replica
// surfaces as 503 (the corpus error epoch is sampled around each request).
//
// Per §3.2, the client never supplies the weight vector: "the system ...
// leaves the weighting vector w as a system parameter on the server. In the
// default setting, the spatial distance and textual similarity are weighed
// equally, i.e., w = <0.5, 0.5>."
//
// Endpoints (all JSON):
//   POST /query    {"x":..,"y":..,"keywords":"coffee wifi","k":3}
//            ->    {"query_id":..,"results":[{"id","name","score",...}],..}
//   POST /whynot   {"query_id":..,"missing":[ids],"model":"preference"|
//                   "keyword"|"both"|"combined","lambda":0.5}
//            ->    explanations + refined queries + refined results
//                  ("combined" applies both models in sequence, §3.2)
//   GET  /objects?limit=N      -> dataset sample (the demo's grey markers)
//   GET  /log                  -> query log snapshot (incl. trace_id)
//   GET  /metrics              -> Prometheus text exposition (this service's
//                                 registry + the remote corpus's in
//                                 coordinator mode); docs/observability.md
//   GET  /trace/<id>           -> one finished request trace as a JSON span
//                                 tree; in coordinator mode shard-side spans
//                                 are fetched and stitched in by trace id
//   POST /forget   {"query_id":..}   -> drops a cached initial query
//   GET  /health               -> {"status":"ok","objects":N[,"shards":S]}
//   POST /snapshot [{"path":..}]  -> admin: serialize the warm state to disk
//                  (one file for a Corpus, one file per shard for a
//                  ShardedCorpus). Writes to YaskServiceOptions::
//                  snapshot_path; the body's "path" override is honoured
//                  only when allow_snapshot_path_override is set (403
//                  otherwise).
//   GET  /admin/layout         -> the live remote layout: generation, spec,
//                                 shard count, draining deployments
//   POST /admin/layout {"remote_shards":"a|b,c|d"} -> zero-downtime cutover
//                  to a different fleet of the SAME dataset (409 on a
//                  dataset mismatch, 502 when the fleet is unreachable);
//                  in-flight requests drain on the old layout
//   POST /admin/replicas {"shard":N,"add"|"remove":"host:port"} -> widen or
//                  shrink one shard's replica set at runtime via the same
//                  validated cutover path
//                  (the admin plane answers 501 outside coordinator mode
//                  and 403 unless enable_fleet_admin — docs/operations.md)

#ifndef YASK_SERVER_YASK_SERVICE_H_
#define YASK_SERVER_YASK_SERVICE_H_

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/corpus/corpus.h"
#include "src/corpus/remote_corpus.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/http_server.h"
#include "src/server/json.h"
#include "src/server/query_log.h"
#include "src/server/result_cache.h"
#include "src/whynot/why_not_engine.h"

namespace yask {

/// Server-side system configuration (§3.2).
struct YaskServiceOptions {
  /// The system weight parameter (clients cannot set it).
  Weights system_weights;  // Defaults to <0.5, 0.5>.
  /// Default λ when a /whynot request does not specify one.
  double default_lambda = 0.5;
  uint16_t port = 0;  // 0 = ephemeral.
  size_t num_workers = 4;
  /// Upper bound on cached initial queries. Clients that never POST /forget
  /// used to grow the cache without limit; beyond this many entries the
  /// least-recently-used query is evicted (a later /whynot for it answers
  /// 404, exactly as if the client had forgotten it). 0 disables the bound.
  size_t max_cached_queries = 4096;
  /// Default target of the POST /snapshot admin endpoint. For a sharded
  /// service this is the per-shard file prefix (see ShardedCorpus::Save).
  std::string snapshot_path;
  /// Whether POST /snapshot may override the target via {"path": ...} in
  /// the request body. Off by default: the server has no authentication, so
  /// a client-chosen path would let any local client overwrite any file the
  /// server process can write. Enable only for trusted/admin deployments.
  bool allow_snapshot_path_override = false;
  /// Traces slower than this are PINNED in the trace store (survive ring
  /// eviction) — the slow-query debugging knob (docs/observability.md).
  double slow_trace_threshold_ms = 250.0;
  /// Coordinator result cache + single-flight coalescing for /query and
  /// idempotent /whynot. OFF by default — with the cache on, a repeated
  /// identical /query is served the cached bytes INCLUDING the original
  /// query_id instead of minting a fresh id and log entry, which is the
  /// right trade for a read-heavy production front end but changes the
  /// fresh-id-per-request contract the scripted demo/CI flows lean on.
  /// Cache keys fold in the corpus error epoch, so every replica failure
  /// implicitly invalidates all prior entries; POST /forget additionally
  /// drops exactly the entries rendered for the forgotten query_id.
  bool enable_result_cache = false;
  size_t result_cache_max_entries = 1024;
  size_t result_cache_max_bytes = 64u << 20;
  /// Fleet admin endpoints (coordinator mode only): POST /admin/layout swaps
  /// the whole shard layout at runtime (zero-downtime cutover — in-flight
  /// requests drain on the old layout, new requests route on the new one)
  /// and POST /admin/replicas adds/removes one replica of one shard. Off by
  /// default for the same reason as allow_snapshot_path_override: the server
  /// has no authentication, and these endpoints redirect all traffic.
  bool enable_fleet_admin = false;
  /// Dial/retry policy for fleets connected via the admin endpoints (the
  /// boot fleet's policy is whatever the caller passed to
  /// RemoteCorpus::Connect).
  RemoteShardOptions admin_connect_options;
};

/// The YASK service: owns the HTTP server and the query cache; borrows the
/// corpus (which must outlive it).
class YaskService {
 public:
  /// Full-featured replica over one corpus (requires corpus.has_kcr()).
  explicit YaskService(const Corpus& corpus, YaskServiceOptions options = {});

  /// Scale-out mode: top-k and why-not both fan out over the shards (every
  /// shard must have its KcR-tree; ShardedCorpus builds them by default).
  explicit YaskService(const ShardedCorpus& corpus,
                       YaskServiceOptions options = {});

  /// Coordinator mode: the shards are yask_shard_server processes behind a
  /// RemoteCorpus; /whynot additionally requires every remote shard to
  /// carry its KcR-tree (otherwise it answers 501 naming the shards).
  explicit YaskService(const RemoteCorpus& corpus,
                       YaskServiceOptions options = {});

  /// Starts serving; returns the bound port via port().
  Status Start();
  void Stop();

  uint16_t port() const { return server_.bound_port(); }
  const QueryLog& log() const { return log_; }

  /// The coordinator's own registry (GET /metrics also appends the remote
  /// corpus's registry in coordinator mode).
  const MetricsRegistry& metrics() const { return metrics_; }
  /// Finished request traces (GET /trace/<id> serves these, stitched with
  /// shard-side spans in coordinator mode).
  const TraceStore& traces() const { return traces_; }

  /// Number of cached initial queries (for tests).
  size_t cached_queries() const;

 private:
  explicit YaskService(YaskServiceOptions options);

  /// Wraps a handler with per-endpoint metrics (request counter by response
  /// code + latency histogram). When `traced` is set the wrapper also mints
  /// a trace id, installs a TraceRecorder for the request thread, roots the
  /// span tree at "<METHOD> <endpoint>", folds every recorded span into the
  /// yask_stage_ms{stage=…} histograms and files the trace in traces_.
  HttpServer::Handler Instrumented(const char* endpoint, bool traced,
                                   HttpServer::Handler inner);

  HttpResponse HandleQuery(const HttpRequest& req);
  HttpResponse HandleWhyNot(const HttpRequest& req);
  /// The uncached /query body: runs the fan-out, renders the rows, mints the
  /// query_id (returned via `query_id_out` for cache association).
  HttpResponse ComputeQuery(const Query& q, uint64_t epoch,
                            uint64_t* query_id_out);
  /// The uncached /whynot body for an already-resolved request.
  HttpResponse ComputeWhyNot(const Query& q,
                             const std::vector<ObjectId>& missing,
                             const std::string& model, double lambda,
                             uint64_t epoch);
  /// Result-cache + single-flight wrapper. With the cache off it just runs
  /// `compute`. On a miss one leader computes; followers share a 200 leader
  /// response byte-for-byte and recompute independently when the leader
  /// fails. Only 200 responses computed under a still-current error epoch
  /// are cached. `compute` receives a slot for the query_id its response
  /// was rendered for (the /forget invalidation hook); the insert re-checks
  /// that id's query-cache membership under cache_mu_ so a /forget or LRU
  /// eviction racing the compute can never resurrect a response for an id
  /// that now answers 404.
  HttpResponse CachedCompute(
      const std::string& key, uint64_t epoch,
      const std::function<HttpResponse(uint64_t*)>& compute);
  HttpResponse HandleObjects(const HttpRequest& req);
  HttpResponse HandleLog(const HttpRequest& req);
  HttpResponse HandleForget(const HttpRequest& req);
  HttpResponse HandleHealth(const HttpRequest& req);
  HttpResponse HandleSnapshot(const HttpRequest& req);
  HttpResponse HandleMetrics(const HttpRequest& req);
  HttpResponse HandleTrace(const HttpRequest& req);
  HttpResponse HandleAdminLayout(const HttpRequest& req);
  HttpResponse HandleAdminReplicas(const HttpRequest& req);

  // --- Corpus-layout-independent serving state accessors. ---
  size_t ObjectCount() const;
  const Vocabulary& vocab() const;
  /// Object by global id (in sharded mode `.id` of the result is shard-
  /// local; always use `global_id` for identity).
  const SpatialObject& ObjectAt(ObjectId global_id) const;
  ObjectId FindByName(const std::string& name) const;
  TopKResult RunTopK(const Query& query) const;
  /// Whether every shard (or the one corpus) carries its KcR-tree — the
  /// prerequisite for answering /whynot.
  bool HasKcr() const;

  JsonValue ResultToJson(const TopKResult& result) const;

  /// Remote mode: the corpus error-epoch snapshot (0 in local modes).
  uint64_t RemoteEpoch() const;
  /// Remote mode: an engaged 503 when the epoch moved past `before` — a
  /// shard failed mid-request, so the computed payload cannot be trusted.
  std::optional<HttpResponse> RemoteFailure(uint64_t before) const;

  // --- Layout deployments (zero-downtime cutover, remote mode only). ---

  /// One connected remote fleet plus the engine over it. The coordinator
  /// serves from exactly one ACTIVE deployment; POST /admin/layout connects
  /// a new one and swaps it in, while requests already in flight keep the
  /// deployment they started on (pinned via shared_ptr) until they finish —
  /// the cutover window. The boot deployment borrows the constructor's
  /// corpus; admin-connected deployments own theirs.
  struct RemoteDeployment {
    uint64_t generation = 1;
    std::string spec;  // "host:port|...,host:port|..." — one group per shard.
    // `owned` is declared before `engine`: the engine's oracle borrows the
    // corpus, so reverse destruction order must tear the engine down first.
    std::optional<RemoteCorpus> owned;
    const RemoteCorpus* corpus = nullptr;  // &*owned, or the borrowed boot corpus.
    std::optional<WhyNotEngine> engine;
  };

  /// Pins the active deployment to the request thread for the request's
  /// whole lifetime (every handler runs under one): the shared_ptr keeps a
  /// mid-request cutover from destroying the deployment under the handler,
  /// and the thread-local lets every accessor on the call path read the SAME
  /// layout without threading a parameter through the oracle seam.
  class DeploymentPin {
   public:
    explicit DeploymentPin(const YaskService& service);
    ~DeploymentPin();
    DeploymentPin(const DeploymentPin&) = delete;
    DeploymentPin& operator=(const DeploymentPin&) = delete;

   private:
    std::shared_ptr<const RemoteDeployment> pinned_;
    const RemoteDeployment* previous_;
  };

  /// The deployment this request runs on (null in local modes).
  const RemoteDeployment* CurrentDeployment() const;
  /// The pinned remote corpus (null in local modes).
  const RemoteCorpus* ActiveRemote() const;
  /// The engine answering this request: the pinned deployment's in remote
  /// mode, the service-owned one otherwise.
  const WhyNotEngine& Engine() const;
  /// Active layout generation (folds into result-cache keys: a cutover must
  /// retire every response computed on the old layout). 0 in local modes.
  uint64_t LayoutGeneration() const;
  /// Connects `spec` and swaps it in as the active deployment. Shared by
  /// /admin/layout and /admin/replicas.
  HttpResponse SwapLayout(const std::string& spec);
  /// Canonical spec of a connected corpus (per-shard replica groups
  /// '|'-joined, shards ','-joined in shard order).
  static std::string SpecOf(const RemoteCorpus& corpus);
  /// Admin endpoints answer 403 unless enable_fleet_admin, 501 outside
  /// remote mode; returns the blocking response or nullopt.
  std::optional<HttpResponse> AdminGate() const;

  /// Caches `query`, evicting the LRU entry beyond max_cached_queries.
  uint64_t CacheQuery(const Query& query);
  /// Looks a cached query up and marks it most-recently used.
  std::optional<Query> LookupCachedQuery(uint64_t id);

  const Corpus* corpus_ = nullptr;          // Exactly one of corpus_/sharded_/
  const ShardedCorpus* sharded_ = nullptr;  // remote mode is active.
  bool remote_mode_ = false;
  /// Local modes only: the engine whose oracle matches the corpus. Remote
  /// mode keeps its engine inside the deployment (it must drain with it).
  std::optional<WhyNotEngine> engine_;
  /// Remote mode: the active deployment plus the ones still draining (kept
  /// alive until their last in-flight request drops its pin; reaped on the
  /// next admin call). Guarded by layout_mu_.
  mutable std::mutex layout_mu_;
  std::shared_ptr<const RemoteDeployment> deployment_;
  std::vector<std::shared_ptr<const RemoteDeployment>> draining_;
  /// The request thread's pinned deployment (set by DeploymentPin). Static:
  /// a nested private type cannot appear in a namespace-scope thread_local.
  static thread_local const RemoteDeployment* tls_deployment_;
  YaskServiceOptions options_;
  // Declared before server_: handlers running on server threads touch both,
  // and ~YaskService must stop those threads (server_ destroyed first)
  // before the registry and trace store go away.
  MetricsRegistry metrics_;
  TraceStore traces_;
  HttpServer server_;
  QueryLog log_;

  // LRU query cache: map id -> (query, position in lru_); lru_ holds ids,
  // most recently used at the front.
  mutable std::mutex cache_mu_;
  struct CacheEntry {
    Query query;
    std::list<uint64_t>::iterator lru_pos;
  };
  std::unordered_map<uint64_t, CacheEntry> query_cache_;
  std::list<uint64_t> lru_;
  uint64_t next_query_id_ = 1;

  // Result cache + single-flight (null / unused when disabled). Counter
  // pointers are resolved once in the constructor — the hot path never takes
  // the registry mutex for them.
  std::unique_ptr<ResultCache> result_cache_;
  SingleFlight single_flight_;
  Counter* cache_hits_ = nullptr;
  Counter* cache_misses_ = nullptr;
  Counter* coalesced_ = nullptr;
  Counter* coalesce_leader_failures_ = nullptr;
};

}  // namespace yask

#endif  // YASK_SERVER_YASK_SERVICE_H_
