#!/usr/bin/env bash
# Tier-1 verify (ROADMAP.md), end to end: configure, build, run the test
# suite. Run from anywhere; builds into <repo>/build.
#
#   scripts/check.sh              # configure + build + ctest
#   scripts/check.sh --bench      # additionally run bench_snapshot,
#                                 # bench_sharded and bench_whynot_sharded,
#                                 # leaving BENCH_*.json in the build dir
#                                 # (each sharded bench fails the run on any
#                                 # divergence from the unsharded answers)
#   scripts/check.sh --sanitize   # ASan/UBSan build of the whole tree into
#                                 # <repo>/build-sanitize + ctest under the
#                                 # sanitizers (use for the concurrency and
#                                 # shutdown tests; pair with TSAN_OPTIONS/
#                                 # a TSan toolchain for race hunting)
#
# The distributed suite alone: (cd build && ctest -L sharded); the sanitize
# run below covers it too (full ctest includes every `sharded`-labelled
# test).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"

run_bench=0
run_sanitize=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench=1 ;;
    --sanitize) run_sanitize=1 ;;
    *) echo "usage: $0 [--bench] [--sanitize]" >&2; exit 2 ;;
  esac
done

if [[ "$run_sanitize" -eq 1 ]]; then
  sanitize_dir="${repo_root}/build-sanitize"
  sanitize_flags="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake -B "$sanitize_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$sanitize_flags" \
    -DCMAKE_EXE_LINKER_FLAGS="$sanitize_flags"
  cmake --build "$sanitize_dir" -j "$(nproc)"
  (cd "$sanitize_dir" && ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --output-on-failure -j "$(nproc)")
  echo "check.sh: sanitize OK"
fi

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc)"
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")

if [[ "$run_bench" -eq 1 ]]; then
  (cd "$build_dir" && ./bench_snapshot --json=BENCH_snapshot.json)
  (cd "$build_dir" && ./bench_sharded --json=BENCH_sharded.json)
  (cd "$build_dir" && ./bench_whynot_sharded --json=BENCH_whynot_sharded.json)
fi

echo "check.sh: OK"
