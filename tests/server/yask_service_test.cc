#include "src/server/yask_service.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "src/corpus/corpus.h"
#include "src/storage/hotel_generator.h"

namespace yask {
namespace {

class YaskServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus(CorpusBuilder().Build(GenerateHotelDataset()));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  void SetUp() override {
    YaskServiceOptions options;
    options.allow_snapshot_path_override = true;  // Tests pick temp paths.
    service_ = std::make_unique<YaskService>(*corpus_, options);
    ASSERT_TRUE(service_->Start().ok());
  }
  void TearDown() override { service_->Stop(); }

  /// Issues the Carol query over HTTP and returns the parsed response.
  JsonValue IssueQuery(int k = 3) {
    JsonValue req = JsonValue::MakeObject();
    req.Set("x", JsonValue(114.158));
    req.Set("y", JsonValue(22.281));
    req.Set("keywords", JsonValue("clean comfortable"));
    req.Set("k", JsonValue(k));
    int status = 0;
    auto body = HttpFetch(service_->port(), "POST", "/query", req.Dump(),
                          &status);
    EXPECT_TRUE(body.ok());
    EXPECT_EQ(status, 200) << *body;
    auto parsed = JsonValue::Parse(*body);
    EXPECT_TRUE(parsed.ok());
    return std::move(parsed).value();
  }

  static const Corpus* corpus_;
  std::unique_ptr<YaskService> service_;
};

const Corpus* YaskServiceTest::corpus_ = nullptr;

TEST_F(YaskServiceTest, HealthEndpoint) {
  int status = 0;
  auto body = HttpFetch(service_->port(), "GET", "/health", "", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);
  auto parsed = JsonValue::Parse(*body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("status").as_string(), "ok");
  EXPECT_EQ(parsed->Get("objects").as_number(), 539.0);
}

TEST_F(YaskServiceTest, QueryReturnsTopKWithServerSideWeights) {
  const JsonValue resp = IssueQuery(3);
  EXPECT_EQ(resp.Get("results").size(), 3u);
  // §3.2: the weighting vector is a server-side parameter, default 0.5/0.5.
  EXPECT_DOUBLE_EQ(resp.Get("ws").as_number(), 0.5);
  EXPECT_DOUBLE_EQ(resp.Get("wt").as_number(), 0.5);
  EXPECT_GT(resp.Get("query_id").as_number(), 0.0);
  // Results carry names and scores.
  const JsonValue& first = resp.Get("results").At(0);
  EXPECT_FALSE(first.Get("name").as_string().empty());
  EXPECT_GT(first.Get("score").as_number(), 0.0);
  EXPECT_EQ(service_->cached_queries(), 1u);
}

TEST_F(YaskServiceTest, QueryValidationErrors) {
  int status = 0;
  auto body = HttpFetch(service_->port(), "POST", "/query", "{}", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 400);
  // Unknown keywords produce an empty keyword set => invalid query.
  JsonValue req = JsonValue::MakeObject();
  req.Set("x", JsonValue(114.2));
  req.Set("y", JsonValue(22.3));
  req.Set("keywords", JsonValue("qqqqzzzz"));
  req.Set("k", JsonValue(3));
  body = HttpFetch(service_->port(), "POST", "/query", req.Dump(), &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 400);
  // Malformed JSON.
  body = HttpFetch(service_->port(), "POST", "/query", "{not json", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 400);
}

TEST_F(YaskServiceTest, WhyNotWorkflowRevivesMissingHotel) {
  const JsonValue qresp = IssueQuery(3);
  const uint64_t query_id =
      static_cast<uint64_t>(qresp.Get("query_id").as_number());

  // Choose a hotel not in the result as the "expected but missing" one.
  const JsonValue wide = IssueQuery(20);
  const JsonValue& row = wide.Get("results").At(15);
  const double missing_id = row.Get("id").as_number();

  JsonValue wn = JsonValue::MakeObject();
  wn.Set("query_id", JsonValue(static_cast<size_t>(query_id)));
  JsonValue missing = JsonValue::MakeArray();
  missing.Append(JsonValue(missing_id));
  wn.Set("missing", std::move(missing));
  wn.Set("model", JsonValue("both"));
  wn.Set("lambda", JsonValue(0.5));

  int status = 0;
  auto body = HttpFetch(service_->port(), "POST", "/whynot", wn.Dump(),
                        &status);
  ASSERT_TRUE(body.ok());
  ASSERT_EQ(status, 200) << *body;
  auto parsed = JsonValue::Parse(*body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue& a = parsed.value();
  EXPECT_EQ(a.Get("explanations").size(), 1u);
  EXPECT_TRUE(a.Has("preference"));
  EXPECT_TRUE(a.Has("keyword"));
  EXPECT_TRUE(a.Has("recommended"));
  // The refined result contains the missing hotel.
  bool revived = false;
  for (const JsonValue& r : a.Get("refined_results").array_items()) {
    if (r.Get("id").as_number() == missing_id) revived = true;
  }
  EXPECT_TRUE(revived);
  // Penalties are within [0, 1].
  EXPECT_GE(a.Get("preference").Get("penalty").Get("value").as_number(), 0.0);
  EXPECT_LE(a.Get("preference").Get("penalty").Get("value").as_number(), 1.0);
}

TEST_F(YaskServiceTest, WhyNotByHotelName) {
  const JsonValue qresp = IssueQuery(3);
  const uint64_t query_id =
      static_cast<uint64_t>(qresp.Get("query_id").as_number());
  const JsonValue wide = IssueQuery(15);
  const std::string name =
      wide.Get("results").At(12).Get("name").as_string();

  JsonValue wn = JsonValue::MakeObject();
  wn.Set("query_id", JsonValue(static_cast<size_t>(query_id)));
  JsonValue missing = JsonValue::MakeArray();
  missing.Append(JsonValue(name));
  wn.Set("missing", std::move(missing));
  int status = 0;
  auto body = HttpFetch(service_->port(), "POST", "/whynot", wn.Dump(),
                        &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200) << *body;
}

TEST_F(YaskServiceTest, CombinedModelEndpoint) {
  const JsonValue qresp = IssueQuery(3);
  const JsonValue wide = IssueQuery(20);
  const double missing_id = wide.Get("results").At(15).Get("id").as_number();

  JsonValue wn = JsonValue::MakeObject();
  wn.Set("query_id", qresp.Get("query_id"));
  JsonValue missing = JsonValue::MakeArray();
  missing.Append(JsonValue(missing_id));
  wn.Set("missing", std::move(missing));
  wn.Set("model", JsonValue("combined"));
  int status = 0;
  auto body = HttpFetch(service_->port(), "POST", "/whynot", wn.Dump(),
                        &status);
  ASSERT_TRUE(body.ok());
  ASSERT_EQ(status, 200) << *body;
  auto parsed = JsonValue::Parse(*body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue& a = parsed.value();
  EXPECT_TRUE(a.Has("total_penalty"));
  EXPECT_TRUE(a.Has("preference_penalty"));
  EXPECT_TRUE(a.Has("keyword_penalty"));
  EXPECT_TRUE(a.Get("preference_first").is_bool());
  bool revived = false;
  for (const JsonValue& r : a.Get("refined_results").array_items()) {
    if (r.Get("id").as_number() == missing_id) revived = true;
  }
  EXPECT_TRUE(revived);
}

TEST_F(YaskServiceTest, UnknownModelRejected) {
  const JsonValue qresp = IssueQuery(3);
  JsonValue wn = JsonValue::MakeObject();
  wn.Set("query_id", qresp.Get("query_id"));
  JsonValue missing = JsonValue::MakeArray();
  missing.Append(JsonValue(5));
  wn.Set("missing", std::move(missing));
  wn.Set("model", JsonValue("oracle"));
  int status = 0;
  auto body = HttpFetch(service_->port(), "POST", "/whynot", wn.Dump(),
                        &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 400);
}

TEST_F(YaskServiceTest, WhyNotUnknownQueryIdIs404) {
  JsonValue wn = JsonValue::MakeObject();
  wn.Set("query_id", JsonValue(424242));
  JsonValue missing = JsonValue::MakeArray();
  missing.Append(JsonValue(1));
  wn.Set("missing", std::move(missing));
  int status = 0;
  auto body = HttpFetch(service_->port(), "POST", "/whynot", wn.Dump(),
                        &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 404);
}

TEST_F(YaskServiceTest, ForgetDropsCachedQuery) {
  const JsonValue qresp = IssueQuery(3);
  const size_t id = static_cast<size_t>(qresp.Get("query_id").as_number());
  EXPECT_EQ(service_->cached_queries(), 1u);
  JsonValue req = JsonValue::MakeObject();
  req.Set("query_id", JsonValue(id));
  int status = 0;
  auto body = HttpFetch(service_->port(), "POST", "/forget", req.Dump(),
                        &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);
  EXPECT_EQ(service_->cached_queries(), 0u);
  // Forgetting again reports false.
  body = HttpFetch(service_->port(), "POST", "/forget", req.Dump(), &status);
  auto parsed = JsonValue::Parse(*body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->Get("forgotten").as_bool());
}

TEST_F(YaskServiceTest, ObjectsEndpointHonoursLimit) {
  int status = 0;
  auto body =
      HttpFetch(service_->port(), "GET", "/objects?limit=7", "", &status);
  ASSERT_TRUE(body.ok());
  auto parsed = JsonValue::Parse(*body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("objects").size(), 7u);
  EXPECT_EQ(parsed->Get("total").as_number(), 539.0);
}

TEST_F(YaskServiceTest, LogRecordsQueriesWithResponseTimes) {
  IssueQuery(3);
  IssueQuery(5);
  int status = 0;
  auto body = HttpFetch(service_->port(), "GET", "/log", "", &status);
  ASSERT_TRUE(body.ok());
  auto parsed = JsonValue::Parse(*body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue& entries = parsed->Get("entries");
  ASSERT_EQ(entries.size(), 2u);
  for (const JsonValue& e : entries.array_items()) {
    EXPECT_EQ(e.Get("kind").as_string(), "topk");
    EXPECT_GE(e.Get("response_millis").as_number(), 0.0);
  }
}

TEST_F(YaskServiceTest, SnapshotEndpointWritesLoadableSnapshot) {
  const std::string path = ::testing::TempDir() + "yask_service_test.snap";
  JsonValue req = JsonValue::MakeObject();
  req.Set("path", JsonValue(path));
  int status = 0;
  auto body =
      HttpFetch(service_->port(), "POST", "/snapshot", req.Dump(), &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200) << *body;
  auto parsed = JsonValue::Parse(*body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("path").as_string(), path);
  EXPECT_GT(parsed->Get("bytes").as_number(), 0.0);
  EXPECT_EQ(parsed->Get("objects").as_number(), 539.0);

  // The written file restores the serving state: same store and indexes,
  // same top-3 answer for the Carol query.
  auto restored = CorpusBuilder().FromSnapshot(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_TRUE(restored->has_kcr());
  EXPECT_EQ(restored->size(), corpus_->size());
  YaskService reloaded(*restored);
  ASSERT_TRUE(reloaded.Start().ok());
  const JsonValue original = IssueQuery(3);
  JsonValue q = JsonValue::MakeObject();
  q.Set("x", JsonValue(114.158));
  q.Set("y", JsonValue(22.281));
  q.Set("keywords", JsonValue("clean comfortable"));
  q.Set("k", JsonValue(3));
  auto rbody = HttpFetch(reloaded.port(), "POST", "/query", q.Dump(), &status);
  ASSERT_TRUE(rbody.ok());
  auto rparsed = JsonValue::Parse(*rbody);
  ASSERT_TRUE(rparsed.ok());
  EXPECT_EQ(rparsed->Get("results").Dump(), original.Get("results").Dump());
  reloaded.Stop();
  std::remove(path.c_str());
}

TEST_F(YaskServiceTest, SnapshotEndpointWithoutPathIs400) {
  int status = 0;
  auto body = HttpFetch(service_->port(), "POST", "/snapshot", "{}", &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 400);
}

TEST_F(YaskServiceTest, QueryCacheEvictsLeastRecentlyUsed) {
  YaskServiceOptions options;
  options.max_cached_queries = 3;
  YaskService bounded(*corpus_, options);
  ASSERT_TRUE(bounded.Start().ok());

  auto issue = [&](int k) {
    JsonValue req = JsonValue::MakeObject();
    req.Set("x", JsonValue(114.158));
    req.Set("y", JsonValue(22.281));
    req.Set("keywords", JsonValue("clean comfortable"));
    req.Set("k", JsonValue(k));
    int status = 0;
    auto body =
        HttpFetch(bounded.port(), "POST", "/query", req.Dump(), &status);
    EXPECT_TRUE(body.ok());
    EXPECT_EQ(status, 200);
    auto parsed = JsonValue::Parse(*body);
    EXPECT_TRUE(parsed.ok());
    return static_cast<uint64_t>(parsed->Get("query_id").as_number());
  };
  auto whynot_status = [&](uint64_t query_id) {
    JsonValue wn = JsonValue::MakeObject();
    wn.Set("query_id", JsonValue(static_cast<size_t>(query_id)));
    JsonValue missing = JsonValue::MakeArray();
    missing.Append(JsonValue(5));
    wn.Set("missing", std::move(missing));
    int status = 0;
    auto body =
        HttpFetch(bounded.port(), "POST", "/whynot", wn.Dump(), &status);
    EXPECT_TRUE(body.ok());
    return status;
  };

  const uint64_t q1 = issue(3);
  const uint64_t q2 = issue(4);
  const uint64_t q3 = issue(5);
  EXPECT_EQ(bounded.cached_queries(), 3u);

  // Touch q1 so q2 becomes the least recently used, then overflow the cache.
  EXPECT_EQ(whynot_status(q1), 200);
  const uint64_t q4 = issue(6);
  EXPECT_EQ(bounded.cached_queries(), 3u);

  // q2 was evicted; q1, q3 and q4 survive.
  EXPECT_EQ(whynot_status(q2), 404);
  EXPECT_EQ(whynot_status(q1), 200);
  EXPECT_EQ(whynot_status(q3), 200);
  EXPECT_EQ(whynot_status(q4), 200);
  bounded.Stop();
}

TEST_F(YaskServiceTest, ShardedServiceServesQueriesAndWhyNot) {
  const ShardedCorpus sharded = ShardedCorpus::Partition(
      corpus_->store(), GridShardRouter::Fit(corpus_->store(), 4));
  YaskService service(sharded);
  ASSERT_TRUE(service.Start().ok());

  // /health reports the shard layout.
  int status = 0;
  auto health = HttpFetch(service.port(), "GET", "/health", "", &status);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(status, 200);
  auto hparsed = JsonValue::Parse(*health);
  ASSERT_TRUE(hparsed.ok());
  EXPECT_EQ(hparsed->Get("objects").as_number(), 539.0);
  EXPECT_EQ(hparsed->Get("shards").as_number(), 4.0);

  // The Carol query answers identically to the unsharded service.
  JsonValue req = JsonValue::MakeObject();
  req.Set("x", JsonValue(114.158));
  req.Set("y", JsonValue(22.281));
  req.Set("keywords", JsonValue("clean comfortable"));
  req.Set("k", JsonValue(3));
  auto body = HttpFetch(service.port(), "POST", "/query", req.Dump(), &status);
  ASSERT_TRUE(body.ok());
  ASSERT_EQ(status, 200) << *body;
  auto parsed = JsonValue::Parse(*body);
  ASSERT_TRUE(parsed.ok());
  const JsonValue unsharded = IssueQuery(3);
  EXPECT_EQ(parsed->Get("results").Dump(), unsharded.Get("results").Dump());

  // Why-not refinement fans out over the shards and answers bit-identically
  // to the unsharded service (tests/server/sharded_service_whynot_test.cc
  // compares the full payloads; here: the endpoint serves and revives).
  JsonValue wn = JsonValue::MakeObject();
  wn.Set("query_id", parsed->Get("query_id"));
  JsonValue missing = JsonValue::MakeArray();
  missing.Append(JsonValue(5));
  wn.Set("missing", std::move(missing));
  body = HttpFetch(service.port(), "POST", "/whynot", wn.Dump(), &status);
  ASSERT_TRUE(body.ok());
  ASSERT_EQ(status, 200) << *body;
  auto wparsed = JsonValue::Parse(*body);
  ASSERT_TRUE(wparsed.ok());
  EXPECT_EQ(wparsed->Get("explanations").size(), 1u);
  EXPECT_TRUE(wparsed->Has("preference"));
  EXPECT_TRUE(wparsed->Has("keyword"));
  EXPECT_TRUE(wparsed->Has("recommended"));
  bool revived = false;
  for (const JsonValue& r : wparsed->Get("refined_results").array_items()) {
    if (r.Get("id").as_number() == 5.0) revived = true;
  }
  EXPECT_TRUE(revived);
  service.Stop();
}

TEST_F(YaskServiceTest, SnapshotPathOverrideDisabledByDefault) {
  YaskService locked_down(*corpus_);  // Default options.
  ASSERT_TRUE(locked_down.Start().ok());
  JsonValue req = JsonValue::MakeObject();
  req.Set("path", JsonValue("/tmp/should_not_be_written.snap"));
  int status = 0;
  auto body =
      HttpFetch(locked_down.port(), "POST", "/snapshot", req.Dump(), &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 403);
  locked_down.Stop();
}

}  // namespace
}  // namespace yask
