// Copyright (c) 2026 The YASK reproduction authors.
// The KcR-tree (Keyword-count R-tree, §3.3 Fig. 2, refs [6, 9]): an R-tree
// whose every node carries
//   * a keyword -> count map: for each keyword in the union of the documents
//     below the node, the number of objects below it containing that keyword,
//   * `cnt`, the number of objects below the node,
// plus min/max document lengths (a cheap extra that tightens Jaccard bounds).
//
// Given a (candidate) query keyword set q' and a score threshold s — in the
// keyword-adaption module, s is a missing object's score under q' — the node
// summary bounds how many objects below the node out-rank the missing object
// (DESIGN.md D5):
//
//   Let c be the number of q'-keywords an object contains,
//       T = Σ_{t ∈ q'} count(t) (match incidences below the node).
//   TSim(o,q') = c / (|o.doc| + |q'| − c) is bounded per c by min/max |o.doc|;
//   combining with MINDIST/MAXDIST yields the smallest c that could (resp.
//   must) out-score s, and counting arguments bound #objects with ≥ j matches:
//       #{c ≥ j} ≤ min(cnt, ⌊T / j⌋)
//       #{c ≥ j} ≥ ⌈(T − (j−1)·cnt) / (|q'| − j + 1)⌉      (pigeonhole)
//
// Bounds tighten as the traversal descends; at leaves counts are exact.

#ifndef YASK_INDEX_KCR_TREE_H_
#define YASK_INDEX_KCR_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/keyword_set.h"
#include "src/index/rtree.h"
#include "src/query/scoring.h"

namespace yask {

/// A sorted keyword -> count map (the "Keyword-Count Map" of Fig. 2).
class CountMap {
 public:
  CountMap() = default;

  /// Builds from pre-sorted entries (the snapshot-load hook). `entries` must
  /// be strictly ascending by TermId with positive counts; callers decoding
  /// untrusted bytes must validate before constructing.
  explicit CountMap(std::vector<std::pair<TermId, uint32_t>> entries)
      : entries_(std::move(entries)) {}

  /// Count for a keyword; 0 when absent.
  uint32_t Get(TermId term) const;

  /// Adds every keyword of a document with count 1.
  void AddDoc(const KeywordSet& doc);

  /// Pointwise addition of another map.
  void MergeFrom(const CountMap& other);

  /// Σ over the query keywords of their counts (the T of the bound formulas).
  uint64_t TotalMatches(const KeywordSet& query_doc) const;

  /// Largest single-keyword count among the query keywords; a lower bound on
  /// the number of objects matching at least one query keyword.
  uint32_t MaxSingleMatch(const KeywordSet& query_doc) const;

  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<std::pair<TermId, uint32_t>>& entries() const {
    return entries_;
  }

  bool operator==(const CountMap& other) const = default;

  size_t MemoryBytes() const {
    return entries_.capacity() * sizeof(entries_[0]);
  }

 private:
  std::vector<std::pair<TermId, uint32_t>> entries_;  // Sorted by TermId.
};

/// Node summary of the KcR-tree.
struct KcSummary {
  CountMap counts;
  uint32_t cnt = 0;
  uint32_t min_doc_len = 0;
  uint32_t max_doc_len = 0;

  void Clear() {
    counts.Clear();
    cnt = 0;
    min_doc_len = 0;
    max_doc_len = 0;
  }

  void AddObject(const SpatialObject& o) {
    counts.AddDoc(o.doc);
    const uint32_t len = static_cast<uint32_t>(o.doc.size());
    if (cnt == 0) {
      min_doc_len = len;
      max_doc_len = len;
    } else {
      min_doc_len = std::min(min_doc_len, len);
      max_doc_len = std::max(max_doc_len, len);
    }
    ++cnt;
  }

  void Merge(const KcSummary& other) {
    if (other.cnt == 0) return;
    if (cnt == 0) {
      *this = other;
      return;
    }
    counts.MergeFrom(other.counts);
    min_doc_len = std::min(min_doc_len, other.min_doc_len);
    max_doc_len = std::max(max_doc_len, other.max_doc_len);
    cnt += other.cnt;
  }

  bool Equals(const KcSummary& other) const {
    return cnt == other.cnt && min_doc_len == other.min_doc_len &&
           max_doc_len == other.max_doc_len && counts == other.counts;
  }

  size_t MemoryBytes() const { return counts.MemoryBytes(); }
};

/// The KcR-tree index.
using KcRTree = RTreeT<KcSummary>;

/// An integer interval [lower, upper] on an object count.
struct CountBounds {
  uint32_t lower = 0;
  uint32_t upper = 0;
};

/// Bounds on the number of objects under a node (given rect + summary) whose
/// score under `scorer` exceeds `threshold`.
///
/// Admissibility contract: every object with score > threshold is inside
/// [lower, upper]; objects with score == threshold may or may not be counted
/// by `upper` (ties are resolved exactly only at leaves).
CountBounds BoundOutscoringCount(const Scorer& scorer, const Rect& mbr,
                                 const KcSummary& s, double threshold);

extern template class RTreeT<KcSummary>;

}  // namespace yask

#endif  // YASK_INDEX_KCR_TREE_H_
