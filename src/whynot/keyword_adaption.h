// Copyright (c) 2026 The YASK reproduction authors.
// The keyword-adapted why-not module (§2.2 Definition 3, §3.3, ref [6]).
//
// Goal: given the initial query q and missing objects M, find the refined
// keyword set doc' (and k') minimising penalty Eqn. (4) such that the top-k'
// result contains all of M.
//
// Method (ref [6]): candidate keyword sets are built from q.doc ∪ M.doc —
// deleting keywords of q.doc and/or inserting keywords that describe the
// missing objects. Candidates are enumerated in increasing edit distance
// ∆doc, which yields the admissible penalty floor
//     penalty(c) >= (1−λ)·∆doc(c) / |q.doc ∪ M.doc|                  (D4)
// allowing whole levels to be cut once the floor alone exceeds the best
// penalty found. For each surviving candidate, the rank of every missing
// object under the candidate query is bracketed with KcR-tree node bounds
// (BoundOutscoringCount, D5) and progressively refined — descending the
// frontier node with the widest count gap — until either the candidate's
// penalty lower bound exceeds the current best (pruned without exact ranks)
// or the penalty is pinned exactly. The pure-k refinement (doc unchanged,
// k' = R(M,q), penalty λ) seeds the search.
//
// The basic baseline computes every candidate's ranks by a full database
// scan, as in the paper's evaluation of ref [6].

#ifndef YASK_WHYNOT_KEYWORD_ADAPTION_H_
#define YASK_WHYNOT_KEYWORD_ADAPTION_H_

#include <vector>

#include "src/common/status.h"
#include "src/index/kcr_tree.h"
#include "src/query/query.h"
#include "src/storage/object_store.h"
#include "src/whynot/penalty.h"

namespace yask {

class WhyNotOracle;  // src/whynot/whynot_oracle.h

/// Algorithm selector for AdaptKeywords.
enum class KwAdaptMode {
  kBasic,         // Exact rank by full scan per candidate.
  kBoundAndPrune, // KcR-tree rank bounds with progressive refinement.
};

struct KeywordAdaptOptions {
  /// The λ of Eqn. (4): weight of the ∆k term versus the ∆doc term.
  double lambda = 0.5;
  KwAdaptMode mode = KwAdaptMode::kBoundAndPrune;
  /// Hard cap on ∆doc (0 = only the λ-derived bound).
  size_t max_edit_distance = 0;
  /// Safety valve on generated candidates (0 = unlimited). When hit, the
  /// result is the best among the generated candidates and
  /// `stats.truncated` is set.
  size_t max_candidates = 500000;
  /// Level-synchronous batched search (default): the candidates of one edit
  /// distance share ONE rank-probe batch, refined with one oracle fan-out
  /// per refinement level across all live candidates — the round-trip shape
  /// that makes remote shards affordable. Off = the per-probe search (one
  /// oracle call per candidate per level), kept for comparison benchmarks.
  /// The refined query is bit-identical either way: the search only ever
  /// cuts candidates whose penalty lower bound strictly exceeds the best, so
  /// the winner does not depend on the probing schedule.
  bool batch_probes = true;
  /// Candidates per probe batch (bounds batch memory: each in-flight
  /// candidate holds per-shard refiner frontiers). 0 = unbounded.
  size_t probe_batch_size = 128;
};

/// Work counters (benchmarks E8/E9/E10 and the remote round-trip gate).
struct KeywordAdaptStats {
  size_t candidates_generated = 0;
  size_t candidates_pruned_floor = 0;   // Cut by the ∆doc floor alone.
  size_t candidates_pruned_bounds = 0;  // Cut by KcR-tree penalty bounds.
  size_t candidates_resolved = 0;       // Evaluated to an exact penalty.
  size_t kcr_nodes_expanded = 0;
  size_t objects_scored = 0;            // Exact score evaluations.
  /// Rank-probe refinement fan-outs issued (each is one RankProbeBatch::
  /// RefineLevel — one round-trip per shard on a remote oracle). Unbatched,
  /// every per-probe RefineLevel counts one.
  size_t probe_fanouts = 0;
  /// Refinement levels processed. Batched search issues exactly one fan-out
  /// per level (probe_fanouts == refine_levels); the per-probe search issues
  /// one per live probe per level.
  size_t refine_levels = 0;
  bool truncated = false;               // max_candidates hit.
};

/// The outcome: a refined query plus its cost and diagnostics.
struct RefinedKeywordQuery {
  Query refined;             // Same loc/w; adapted doc and k.
  PenaltyBreakdown penalty;  // Eqn. (4) breakdown.
  size_t original_rank = 0;  // R(M, q).
  size_t refined_rank = 0;   // R(M, q').
  bool already_in_result = false;  // M ⊆ top-k(q): nothing to refine.
  KeywordAdaptStats stats;
};

/// Solves Definition 3 over any corpus layout behind the oracle seam. The
/// search offers a candidate to the running best exactly when its true
/// penalty is at most the best so far (bound pruning only ever cuts
/// candidates that are strictly worse), so the refined query — including the
/// deterministic tie order: smaller ∆doc, then lexicographically smaller
/// keyword ids — is bit-identical across layouts.
Result<RefinedKeywordQuery> AdaptKeywords(
    const WhyNotOracle& oracle, const Query& query,
    const std::vector<ObjectId>& missing,
    const KeywordAdaptOptions& options = {});

/// Solves Definition 3 over a KcR-tree built on `store`.
Result<RefinedKeywordQuery> AdaptKeywords(
    const ObjectStore& store, const KcRTree& tree, const Query& query,
    const std::vector<ObjectId>& missing,
    const KeywordAdaptOptions& options = {});

/// Enumerates all candidate keyword sets at edit distance exactly `distance`
/// from `query_doc`, deleting only query keywords and inserting only keywords
/// of `insertable` (= M.doc \ q.doc). Exposed for tests and benchmarks.
std::vector<KeywordSet> GenerateCandidatesAtDistance(
    const KeywordSet& query_doc, const KeywordSet& insertable,
    size_t distance);

}  // namespace yask

#endif  // YASK_WHYNOT_KEYWORD_ADAPTION_H_
