// ShardRouter policies: range validity, determinism, grid balance, and the
// pluggability of the seam (both routers drive the same partitioner).

#include "src/corpus/shard_router.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/storage/dataset_generator.h"

namespace yask {
namespace {

ObjectStore ClusteredDataset(size_t n, uint64_t seed) {
  DatasetSpec spec;
  spec.num_objects = n;
  spec.vocabulary_size = 50;
  spec.seed = seed;
  return GenerateDataset(spec);
}

std::vector<size_t> ShardCounts(const ObjectStore& store,
                                const ShardRouter& router) {
  std::vector<size_t> counts(router.num_shards(), 0);
  for (const SpatialObject& o : store.objects()) {
    const uint32_t s = router.Route(o.loc);
    EXPECT_LT(s, router.num_shards());
    ++counts[s];
  }
  return counts;
}

TEST(GridShardRouterTest, EveryShardCountIsCoveredAndBalanced) {
  const ObjectStore store = ClusteredDataset(4000, 5);
  for (const uint32_t shards : {1u, 2u, 3u, 4u, 7u, 8u, 16u}) {
    auto router = GridShardRouter::Fit(store, shards);
    ASSERT_EQ(router->num_shards(), shards);
    const std::vector<size_t> counts = ShardCounts(store, *router);
    // The quantile grid keeps shards within a loose balance envelope even
    // on clustered data (ties at cut values can shift a few objects).
    const size_t ideal = store.size() / shards;
    for (const size_t c : counts) {
      EXPECT_GE(c, ideal / 2) << "shards=" << shards;
      EXPECT_LE(c, ideal * 2) << "shards=" << shards;
    }
  }
}

TEST(GridShardRouterTest, RoutingIsDeterministic) {
  const ObjectStore store = ClusteredDataset(1000, 6);
  auto a = GridShardRouter::Fit(store, 6);
  auto b = GridShardRouter::Fit(store, 6);
  for (const SpatialObject& o : store.objects()) {
    EXPECT_EQ(a->Route(o.loc), b->Route(o.loc));
  }
  EXPECT_EQ(a->Describe(), b->Describe());
}

TEST(GridShardRouterTest, HandlesDegenerateStores) {
  // Empty store: everything (e.g. future inserts) routes in range.
  ObjectStore empty;
  auto router = GridShardRouter::Fit(empty, 4);
  EXPECT_LT(router->Route(Point{0.3, 0.8}), 4u);

  // All objects at one point: routing still lands in range.
  ObjectStore clones;
  const TermId kw = clones.mutable_vocab()->Intern("x");
  for (int i = 0; i < 50; ++i) {
    clones.Add(Point{0.5, 0.5}, KeywordSet({kw}), "c");
  }
  auto clone_router = GridShardRouter::Fit(clones, 8);
  EXPECT_LT(clone_router->Route(Point{0.5, 0.5}), 8u);

  // Fewer objects than shards.
  ObjectStore tiny;
  tiny.mutable_vocab()->Intern("y");
  tiny.Add(Point{0.1, 0.2}, KeywordSet({0}), "a");
  tiny.Add(Point{0.9, 0.8}, KeywordSet({0}), "b");
  auto tiny_router = GridShardRouter::Fit(tiny, 5);
  for (const SpatialObject& o : tiny.objects()) {
    EXPECT_LT(tiny_router->Route(o.loc), 5u);
  }
}

TEST(HashShardRouterTest, InRangeDeterministicAndRoughlyBalanced) {
  const ObjectStore store = ClusteredDataset(4000, 7);
  const HashShardRouter router(4);
  const std::vector<size_t> counts = ShardCounts(store, router);
  for (const size_t c : counts) {
    EXPECT_GT(c, store.size() / 8);  // No empty or starved shard.
  }
  EXPECT_EQ(router.Route(Point{0.25, 0.75}), router.Route(Point{0.25, 0.75}));
  EXPECT_EQ(router.Describe(), "hash 4");
}

}  // namespace
}  // namespace yask
