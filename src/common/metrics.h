// Copyright (c) 2026 The YASK reproduction authors.
// Fleet-wide metrics: a lock-light registry of counters, gauges and
// log-bucketed latency histograms, rendered in the Prometheus text
// exposition format by GET /metrics on both the coordinator (YaskService)
// and the shard server (ShardService).
//
// Design rules (docs/observability.md):
//   * The HOT PATH is pure relaxed atomics: Counter::Add, Gauge::Set and
//     Histogram::Observe never take a lock. The registry mutex guards only
//     instrument CREATION and rendering — callers resolve an instrument
//     once (construction time, or first use of a label set) and then hammer
//     the returned pointer.
//   * Instrument pointers are STABLE for the registry's lifetime (instances
//     live behind unique_ptr in the maps), so handles can be cached freely.
//   * Histograms use log-spaced (powers-of-two) bucket bounds from 1 µs to
//     ~67 s. Quantile(q) is an exact rank selection over those bounds: it
//     returns the smallest bucket upper bound covering the ⌈q·count⌉-th
//     observation, so p50 ≤ p95 ≤ p99 holds by construction.
//   * Label sets are expected to be BOUNDED (endpoints, shard indexes,
//     replica endpoints) — never derived from request payloads.

#ifndef YASK_COMMON_METRICS_H_
#define YASK_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace yask {

/// Sorted (key, value) label pairs identifying one instrument of a family.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A settable instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A log-bucketed latency histogram (milliseconds). Bounds double from
/// 0.001 ms (1 µs); the last bucket is +Inf. 28 buckets cover 1 µs .. 67 s.
class Histogram {
 public:
  static constexpr size_t kBucketCount = 28;  // last one is +Inf

  /// Upper bound (inclusive) of bucket `i`; +Inf for the last bucket.
  static double BucketBound(size_t i);

  void Observe(double millis);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Exact rank selection over the bucket bounds: the smallest finite bound
  /// b with cumulative_count(b) >= ceil(q * count). Monotone in q; returns
  /// 0 when empty. q is clamped to [0, 1].
  double Quantile(double q) const;

 private:
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// The registry: families of labeled instruments plus gauge callbacks
/// (values computed at scrape time, e.g. "replicas currently cooling").
/// Lookup/creation methods are const — the registry is a measurement sink
/// whose owners (corpus, services) hand it out through const accessors; all
/// internal state is guarded by a mutex (creation/render) or atomic (hot
/// path).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument for (name, labels), creating it on first use.
  /// The pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name,
                      const MetricLabels& labels = {}) const;
  Gauge* GetGauge(const std::string& name,
                  const MetricLabels& labels = {}) const;
  Histogram* GetHistogram(const std::string& name,
                          const MetricLabels& labels = {}) const;

  /// Registers a gauge whose value is computed at render time.
  void AddGaugeCallback(const std::string& name, const MetricLabels& labels,
                        std::function<double()> fn) const;

  /// Appends every family in Prometheus text exposition format.
  void RenderPrometheus(std::string* out) const;
  std::string RenderPrometheus() const {
    std::string out;
    RenderPrometheus(&out);
    return out;
  }

 private:
  // One map per instrument type: family name -> label string -> instance.
  template <typename T>
  using FamilyMap =
      std::map<std::string, std::map<std::string, std::unique_ptr<T>>>;

  mutable std::mutex mu_;
  mutable FamilyMap<Counter> counters_;
  mutable FamilyMap<Gauge> gauges_;
  mutable FamilyMap<Histogram> histograms_;
  mutable std::map<std::string, std::map<std::string, std::function<double()>>>
      gauge_callbacks_;
};

/// Serializes labels as `{k="v",k2="v2"}` (empty string for no labels),
/// escaping backslashes, quotes and newlines per the exposition format.
std::string FormatMetricLabels(const MetricLabels& labels);

}  // namespace yask

#endif  // YASK_COMMON_METRICS_H_
