#include "src/server/shard_protocol.h"

namespace yask {
namespace shardrpc {

void PutRect(BufWriter* out, const Rect& r) {
  out->PutF64(r.min_x);
  out->PutF64(r.min_y);
  out->PutF64(r.max_x);
  out->PutF64(r.max_y);
}

Rect GetRect(BufReader* in) {
  Rect r;
  r.min_x = in->GetF64();
  r.min_y = in->GetF64();
  r.max_x = in->GetF64();
  r.max_y = in->GetF64();
  return r;
}

void PutQuery(BufWriter* out, const Query& q) {
  out->PutF64(q.loc.x);
  out->PutF64(q.loc.y);
  out->PutVarU32(q.k);
  out->PutF64(q.w.ws);
  out->PutF64(q.w.wt);
  out->PutDeltaIds(q.doc.ids());
}

Query GetQuery(BufReader* in) {
  Query q;
  q.loc.x = in->GetF64();
  q.loc.y = in->GetF64();
  q.k = in->GetVarU32();
  q.w.ws = in->GetF64();
  q.w.wt = in->GetF64();
  q.doc = KeywordSet::FromSortedUnique(in->GetDeltaIds());
  return q;
}

void PutPlanePoint(BufWriter* out, const PlanePoint& p) {
  out->PutF64(p.x);
  out->PutF64(p.y);
  out->PutU32(p.id);
}

PlanePoint GetPlanePoint(BufReader* in) {
  PlanePoint p;
  p.x = in->GetF64();
  p.y = in->GetF64();
  p.id = in->GetU32();
  return p;
}

void PutScoredRows(BufWriter* out, const std::vector<ScoredObject>& rows) {
  out->PutVarU64(rows.size());
  for (const ScoredObject& row : rows) {
    out->PutU32(row.id);
    out->PutF64(row.score);
  }
}

std::vector<ScoredObject> GetScoredRows(BufReader* in) {
  const uint64_t count = in->GetVarU64();
  std::vector<ScoredObject> rows;
  if (!in->CheckCount(count, sizeof(uint32_t) + sizeof(double))) return rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ScoredObject row;
    row.id = in->GetU32();
    row.score = in->GetF64();
    rows.push_back(row);
  }
  return rows;
}

void PutShardMeta(BufWriter* out, const ShardMeta& meta) {
  out->PutU32(meta.protocol_version);
  out->PutU32(meta.shard_index);
  out->PutU32(meta.shard_count);
  out->PutU64(meta.object_count);
  out->PutF64(meta.dist_norm);
  PutRect(out, meta.global_bounds);
  out->PutU8(meta.has_kcr ? 1 : 0);
  out->PutU8(meta.setr_empty ? 1 : 0);
  PutRect(out, meta.setr_root_mbr);
  out->PutString(meta.router);
  out->PutU8(meta.global_ids.empty() ? 1 : 0);  // 1 = identity mapping.
  if (!meta.global_ids.empty()) out->PutDeltaIds(meta.global_ids);
}

Result<ShardMeta> GetShardMeta(BufReader* in) {
  ShardMeta meta;
  meta.protocol_version = in->GetU32();
  meta.shard_index = in->GetU32();
  meta.shard_count = in->GetU32();
  meta.object_count = in->GetU64();
  meta.dist_norm = in->GetF64();
  meta.global_bounds = GetRect(in);
  meta.has_kcr = in->GetU8() != 0;
  meta.setr_empty = in->GetU8() != 0;
  meta.setr_root_mbr = GetRect(in);
  meta.router = in->GetString();
  const bool identity = in->GetU8() != 0;
  if (!identity) meta.global_ids = in->GetDeltaIds();
  if (!in->ok()) return in->status();
  if (!identity && meta.global_ids.size() != meta.object_count) {
    return Status::InvalidArgument(
        "shard meta id map does not match its object count");
  }
  return meta;
}

void PutObject(BufWriter* out, ObjectId global_id, const SpatialObject& o) {
  out->PutU32(global_id);
  out->PutF64(o.loc.x);
  out->PutF64(o.loc.y);
  out->PutDeltaIds(o.doc.ids());
  out->PutString(o.name);
}

SpatialObject GetObject(BufReader* in) {
  SpatialObject o;
  o.id = in->GetU32();
  o.loc.x = in->GetF64();
  o.loc.y = in->GetF64();
  o.doc = KeywordSet::FromSortedUnique(in->GetDeltaIds());
  o.name = in->GetString();
  return o;
}

}  // namespace shardrpc
}  // namespace yask
