// Copyright (c) 2026 The YASK reproduction authors.
// The penalty functions of §2.2 quantifying how far a refined query strays
// from the user's initial query.
//
// Preference adjustment (Eqn. (3)):
//   Penalty(q,q')_w = λ · ∆k / (R(M,q) − q.k)
//                   + (1−λ) · ∆w / sqrt(1 + q.ws² + q.wt²)
//   with ∆k = max(0, R(M,q') − q.k) and ∆w = ||q.w − q'.w||₂ .
//
// Keyword adaption (Eqn. (4)):
//   Penalty(q,q')_doc = λ · ∆k / (R(M,q) − q.k)
//                     + (1−λ) · ∆doc / |q.doc ∪ M.doc|
//   with ∆doc the set edit distance (keyword insertions + deletions).
//
// Both normalisers are the paper's worst-case values, so each term lies in
// [0, 1]. The degenerate case R(M,q) == q.k (the "missing" objects are not
// actually missing) makes the ∆k term 0 by convention — no refinement needed.

#ifndef YASK_WHYNOT_PENALTY_H_
#define YASK_WHYNOT_PENALTY_H_

#include <cstddef>

#include "src/query/query.h"

namespace yask {

/// A computed penalty with its ingredients, for logs, the demo UI (Panel 5
/// shows "its penalty against users' initial queries") and benchmarks.
struct PenaltyBreakdown {
  double value = 0.0;     // Total penalty in [0, 1].
  double k_term = 0.0;    // λ-weighted ∆k component.
  double mod_term = 0.0;  // (1-λ)-weighted ∆w or ∆doc component.
  size_t delta_k = 0;
  double delta_w = 0.0;   // Preference model only.
  size_t delta_doc = 0;   // Keyword model only.
};

/// Eqn. (3). `original_rank` is R(M, q); `refined_rank` is R(M, q').
PenaltyBreakdown PreferencePenalty(double lambda, const Query& original,
                                   const Weights& refined_w,
                                   size_t original_rank, size_t refined_rank);

/// Eqn. (4). `delta_doc` = edit distance q.doc -> q'.doc; `doc_norm` =
/// |q.doc ∪ M.doc|.
PenaltyBreakdown KeywordPenalty(double lambda, const Query& original,
                                size_t delta_doc, size_t doc_norm,
                                size_t original_rank, size_t refined_rank);

/// The ∆k term shared by both models: λ · max(0, R' − k) / (R − k).
double DeltaKTerm(double lambda, uint32_t k, size_t original_rank,
                  size_t refined_rank);

}  // namespace yask

#endif  // YASK_WHYNOT_PENALTY_H_
