// Experiment E11 (DESIGN.md): "Query Refinement Effectiveness" (§4).
//
// The demo shows "how the initial queries are minimally modified to revive
// the missing hotels". This binary replays the two §1 scenarios (Bob's
// coffee-style near-miss; Carol's keyword-mismatch hotel) on the Hong Kong
// hotel dataset across many seeds and reports, per model: revival rate,
// average penalty, average ∆k and modification magnitude, and which model
// the engine recommends. One representative end-to-end answer is also timed.
//
// Expected shape: 100% revival (guaranteed by construction); keyword
// adaption wins keyword-mismatch scenarios, preference adjustment wins
// weight-mismatch scenarios; penalties stay well below the pure-k cost λ.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "src/index/setr_tree.h"
#include "src/storage/hotel_generator.h"
#include "src/whynot/why_not_engine.h"

namespace yask {
namespace bench {
namespace {

struct ModelAggregate {
  size_t revived = 0;
  size_t runs = 0;
  double penalty = 0.0;
  double delta_k = 0.0;
  double modification = 0.0;  // delta_w or delta_doc.
  size_t recommended = 0;
};

void PrintQualityTable() {
  const Corpus corpus = CorpusBuilder().Build(GenerateHotelDataset());
  const ObjectStore& store = corpus.store();
  WhyNotEngine engine(corpus);

  constexpr size_t kTrials = 60;
  ModelAggregate pref_agg;
  ModelAggregate kw_agg;
  Rng rng(539);
  size_t done = 0;
  while (done < kTrials) {
    Query q = MakeQuery(store, &rng, 2, 3);
    const std::vector<ObjectId> missing =
        PickMissing(store, q, 1, 2 + rng.NextBounded(10));
    if (missing.empty()) continue;
    auto answer = engine.Answer(q, missing);
    if (!answer.ok() || !answer->preference.has_value() ||
        !answer->keyword.has_value() || answer->preference->already_in_result) {
      continue;
    }
    ++done;

    auto check_revived = [&](const Query& refined) {
      std::set<ObjectId> ids;
      for (const ScoredObject& so : engine.TopK(refined)) ids.insert(so.id);
      for (ObjectId m : missing) {
        if (!ids.count(m)) return false;
      }
      return true;
    };
    const RefinedPreferenceQuery& p = *answer->preference;
    pref_agg.runs++;
    pref_agg.revived += check_revived(p.refined);
    pref_agg.penalty += p.penalty.value;
    pref_agg.delta_k += static_cast<double>(p.penalty.delta_k);
    pref_agg.modification += p.penalty.delta_w;
    const RefinedKeywordQuery& kw = *answer->keyword;
    kw_agg.runs++;
    kw_agg.revived += check_revived(kw.refined);
    kw_agg.penalty += kw.penalty.value;
    kw_agg.delta_k += static_cast<double>(kw.penalty.delta_k);
    kw_agg.modification += static_cast<double>(kw.penalty.delta_doc);
    if (answer->recommended == RefinementModel::kPreference) {
      pref_agg.recommended++;
    } else {
      kw_agg.recommended++;
    }
  }

  std::printf(
      "\n=== E11: refinement effectiveness on the Hong Kong hotel dataset "
      "(539 hotels, %zu why-not questions, λ=0.5) ===\n",
      kTrials);
  std::printf("%-24s | %-9s | %-11s | %-7s | %-10s | %s\n", "model",
              "revived", "avg penalty", "avg dk", "avg mod", "recommended");
  std::printf("-------------------------+-----------+-------------+---------+"
              "------------+------------\n");
  auto print_row = [&](const char* name, const ModelAggregate& a,
                       const char* mod_unit) {
    std::printf("%-24s | %4zu/%-4zu | %11.4f | %7.2f | %7.3f %s | %zu\n", name,
                a.revived, a.runs, a.penalty / a.runs, a.delta_k / a.runs,
                a.modification / a.runs, mod_unit, a.recommended);
  };
  print_row("preference adjustment", pref_agg, "dw");
  print_row("keyword adaption", kw_agg, "dd");
  std::printf("(expected: both 100%% revival; penalties << 0.5 = pure-k "
              "cost)\n\n");
}

void BM_WhyNotAnswer_HotelDataset(benchmark::State& state) {
  static const Corpus* corpus =
      new Corpus(CorpusBuilder().Build(GenerateHotelDataset()));
  WhyNotEngine engine(*corpus);
  Rng rng(13);
  Query q = MakeQuery(corpus->store(), &rng, 2, 3);
  std::vector<ObjectId> missing = PickMissing(corpus->store(), q, 1, 7);
  for (auto _ : state) {
    auto answer = engine.Answer(q, missing);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_WhyNotAnswer_HotelDataset);

}  // namespace
}  // namespace bench
}  // namespace yask

int main(int argc, char** argv) {
  yask::bench::PrintQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
