// Experiment E11: parallel fan-out/merge top-k over a ShardedCorpus.
//
// Partitions the shared benchmark dataset into 1/2/4/8 spatial-grid shards
// and runs the same randomized top-k workload through ShardedTopKEngine at
// each shard count. Every sharded result is cross-checked for exact
// equality against the unsharded SetRTopKEngine — the fan-out merge must be
// bit-identical, so a fast-but-wrong configuration fails the run (non-zero
// exit) rather than entering the perf trajectory.
//
// Two timings per configuration:
//   * wall      — ShardedTopKEngine::Query on this host as-is (home-shard
//                 search + thresholded fan-out; parallel when the host has
//                 cores for it, sequential with threshold refinement when
//                 it does not).
//   * scatter   — the scatter-gather deployment model: every shard searches
//                 concurrently on its own core/node (a shard snapshot file
//                 is the shippable unit), so per-query latency is the MAX of
//                 the per-shard full search times plus the coordinator
//                 merge. Each shard search is timed individually; no
//                 parallel hardware is required to measure it. On a 1-core
//                 CI host this is the number that reflects what the sharding
//                 layer buys a real deployment; on a multicore host `wall`
//                 converges toward it.
//
// The speedup_4_shards_vs_1 context key reports the scatter model
// (speedup_metric records that); wall speedups are reported alongside.
//
// Like bench_snapshot this is a standalone harness (no google-benchmark):
// it emits the machine-readable BENCH_sharded.json in google-benchmark's
// JSON shape so existing tooling parses it.
//
//   $ ./bench_sharded [--n=200000] [--queries=300] [--json=BENCH_sharded.json]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/corpus/sharded_corpus.h"
#include "src/server/json.h"

namespace yask {
namespace bench {
namespace {

constexpr int kReps = 3;  // Best-of for each timed workload pass.

struct ShardRun {
  size_t shards = 0;
  double wall_ms = 0.0;     // Best-of-kReps wall for the whole workload.
  double scatter_ms = 0.0;  // Sum over queries of max-per-shard search time.
  bool results_match = true;
};

std::vector<Query> MakeWorkload(const ObjectStore& store, size_t count) {
  Rng rng(kDatasetSeed + 1);
  std::vector<Query> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(MakeQuery(store, &rng, /*num_keywords=*/3, /*k=*/10));
  }
  return queries;
}

}  // namespace
}  // namespace bench
}  // namespace yask

int main(int argc, char** argv) {
  using namespace yask;
  using namespace yask::bench;

  size_t n = 200000;
  size_t num_queries = 300;
  std::string json_path = "BENCH_sharded.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<size_t>(std::strtoull(arg.c_str() + 4, nullptr, 10));
    } else if (arg.rfind("--queries=", 0) == 0) {
      num_queries =
          static_cast<size_t>(std::strtoull(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--n=N] [--queries=Q] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // The unsharded baseline engine and the reference answers.
  const Corpus& baseline = SharedCorpus(n);
  const ObjectStore& store = baseline.store();
  const SetRTopKEngine baseline_engine = baseline.topk();
  const std::vector<Query> workload = MakeWorkload(store, num_queries);
  std::vector<TopKResult> expected;
  expected.reserve(workload.size());
  double baseline_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    expected.clear();
    Timer timer;
    for (const Query& q : workload) {
      expected.push_back(baseline_engine.Query(q));
    }
    baseline_ms = std::min(baseline_ms, timer.ElapsedMillis());
  }

  std::printf("n=%zu objects, %zu queries (k=10, 3 keywords), host cores=%u\n",
              n, workload.size(), std::thread::hardware_concurrency());
  std::printf("%-16s %11s %9s %11s %9s  %s\n", "engine", "wall ms/q",
              "wall qps", "scatter ms", "sct qps", "exact");
  std::printf("%-16s %11.4f %9.0f %11s %9s  %s\n", "unsharded SetR",
              baseline_ms / workload.size(),
              1000.0 * workload.size() / baseline_ms, "-", "-", "ref");

  std::vector<ShardRun> runs;
  CorpusOptions shard_options;
  shard_options.build_kcr_tree = false;  // Top-k needs only the SetR-trees.
  for (const size_t shards : {1, 2, 4, 8}) {
    const ShardedCorpus sharded = ShardedCorpus::Partition(
        store, GridShardRouter::Fit(store, static_cast<uint32_t>(shards)),
        shard_options);
    const ShardedTopKEngine engine(sharded);

    ShardRun run;
    run.shards = shards;
    // Warm-up pass doubling as the correctness gate: every query must
    // reproduce the unsharded result bit-for-bit (ids and scores).
    for (size_t i = 0; i < workload.size(); ++i) {
      if (engine.Query(workload[i]) != expected[i]) {
        run.results_match = false;
      }
    }

    // (a) Wall time of the fan-out engine on this host.
    run.wall_ms = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      Timer timer;
      for (const Query& q : workload) {
        engine.Query(q);
      }
      run.wall_ms = std::min(run.wall_ms, timer.ElapsedMillis());
    }

    // (b) Scatter-gather model: every shard searches concurrently on its
    // own core/node, so per-query latency is the slowest shard's full
    // search plus the merge. Each shard is timed individually — correct on
    // any host, parallel or not.
    std::vector<SetRTopKEngine> shard_engines;
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      shard_engines.emplace_back(sharded.shard(s).store(),
                                 sharded.shard(s).setr());
      shard_engines.back().set_dist_norm(sharded.dist_norm());
    }
    run.scatter_ms = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      double total = 0.0;
      std::vector<TopKResult> parts(sharded.num_shards());
      for (const Query& q : workload) {
        double slowest = 0.0;
        for (size_t s = 0; s < sharded.num_shards(); ++s) {
          Timer shard_timer;
          parts[s] = shard_engines[s].Query(q);
          slowest = std::max(slowest, shard_timer.ElapsedMillis());
        }
        // The coordinator's merge runs after the slowest shard returns.
        Timer merge_timer;
        TopKResult merged;
        for (size_t s = 0; s < sharded.num_shards(); ++s) {
          for (const ScoredObject& so : parts[s]) {
            merged.push_back(
                ScoredObject{sharded.ToGlobal(s, so.id), so.score});
          }
        }
        std::sort(merged.begin(), merged.end());
        if (merged.size() > q.k) merged.resize(q.k);
        total += slowest + merge_timer.ElapsedMillis();
      }
      run.scatter_ms = std::min(run.scatter_ms, total);
    }
    runs.push_back(run);

    std::printf("%-16s %11.4f %9.0f %11.4f %9.0f  %s\n",
                ("sharded/" + std::to_string(shards)).c_str(),
                run.wall_ms / workload.size(),
                1000.0 * workload.size() / run.wall_ms,
                run.scatter_ms / workload.size(),
                1000.0 * workload.size() / run.scatter_ms,
                run.results_match ? "yes" : "NO — BUG");
  }

  const ShardRun* one = nullptr;
  const ShardRun* four = nullptr;
  for (const ShardRun& r : runs) {
    if (r.shards == 1) one = &r;
    if (r.shards == 4) four = &r;
  }
  const double scatter_speedup =
      (one != nullptr && four != nullptr) ? one->scatter_ms / four->scatter_ms
                                          : 0.0;
  const double wall_speedup =
      (one != nullptr && four != nullptr) ? one->wall_ms / four->wall_ms : 0.0;
  std::printf("\n4-shard vs 1-shard throughput: %.2fx scatter-gather model, "
              "%.2fx wall on this %u-core host\n",
              scatter_speedup, wall_speedup,
              std::thread::hardware_concurrency());

  bool all_match = true;
  for (const ShardRun& r : runs) all_match = all_match && r.results_match;

  JsonValue context = JsonValue::MakeObject();
  context.Set("bench", JsonValue("sharded"));
  context.Set("n", JsonValue(n));
  context.Set("queries", JsonValue(workload.size()));
  context.Set("host_hardware_concurrency",
              JsonValue(static_cast<size_t>(
                  std::thread::hardware_concurrency())));
  context.Set("speedup_4_shards_vs_1", JsonValue(scatter_speedup));
  context.Set("speedup_metric",
              JsonValue("scatter_gather_latency_model (one core/node per "
                        "shard; per-shard searches timed individually)"));
  context.Set("wall_speedup_4_shards_vs_1", JsonValue(wall_speedup));
  context.Set("results_match", JsonValue(all_match));

  JsonValue benches = JsonValue::MakeArray();
  auto bench_row = [&](const std::string& name, double ms_per_query) {
    JsonValue row = JsonValue::MakeObject();
    row.Set("name", JsonValue(name));
    row.Set("run_type", JsonValue("iteration"));
    row.Set("iterations", JsonValue(workload.size()));
    row.Set("real_time", JsonValue(ms_per_query));
    row.Set("cpu_time", JsonValue(ms_per_query));
    row.Set("time_unit", JsonValue("ms"));
    row.Set("items_per_second", JsonValue(1000.0 / ms_per_query));
    benches.Append(std::move(row));
  };
  const std::string suffix = "/" + std::to_string(n);
  bench_row("sharded/topk_unsharded" + suffix, baseline_ms / workload.size());
  for (const ShardRun& r : runs) {
    const std::string shard_tag = "/shards:" + std::to_string(r.shards);
    bench_row("sharded/topk_wall" + shard_tag + suffix,
              r.wall_ms / workload.size());
    bench_row("sharded/topk_scatter" + shard_tag + suffix,
              r.scatter_ms / workload.size());
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("context", std::move(context));
  doc.Set("benchmarks", std::move(benches));

  std::ofstream out(json_path, std::ios::trunc);
  out << doc.Dump() << "\n";
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  // A fast-but-wrong merge must fail loudly, exactly like bench_snapshot.
  return all_match ? 0 : 1;
}
