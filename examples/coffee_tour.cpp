// Example 1 from the paper -- Bob's coffee (§1):
//
//   "Bob visits New York for the first time, and he wants to find a nearby
//    cafe for a cup of coffee. He issues a top-3 spatial query with keyword
//    'coffee.' However, surprisingly, the Starbucks cafe down the street is
//    not in the result. [...] How can the ranking function be adjusted so
//    that the Starbucks cafe, and perhaps other relevant cafes, appears in
//    the result?"
//
// This example builds a Manhattan-like grid of cafes and bars, places a
// "Starbucks" down the street from Bob, shows it missing from the top-3,
// renders the situation as an ASCII map, and applies preference adjustment
// (the model suited to "ranked low because of an improper preference") to
// revive it.
//
//   $ ./coffee_tour

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/corpus/corpus.h"
#include "src/whynot/why_not_engine.h"

using namespace yask;

namespace {

/// Renders a 21x21 ASCII map: '.' cafes, 'o' other shops, 'B' Bob,
/// digits = result ranks, 'S' the missing Starbucks.
void RenderMap(const ObjectStore& store, const Point& bob,
               const TopKResult& result, ObjectId starbucks) {
  constexpr int kSize = 21;
  std::vector<std::string> grid(kSize, std::string(kSize, ' '));
  auto cell = [&](const Point& p) {
    const int x = std::min(kSize - 1, std::max(0, static_cast<int>(p.x * kSize)));
    const int y = std::min(kSize - 1, std::max(0, static_cast<int>(p.y * kSize)));
    return std::pair<int, int>(kSize - 1 - y, x);  // Row 0 at the top.
  };
  const Vocabulary& vocab = store.vocab();
  const TermId coffee = vocab.Find("coffee");
  for (const SpatialObject& o : store.objects()) {
    auto [r, c] = cell(o.loc);
    grid[r][c] = o.doc.Contains(coffee) ? '.' : 'o';
  }
  for (size_t i = 0; i < result.size(); ++i) {
    auto [r, c] = cell(store.Get(result[i].id).loc);
    grid[r][c] = static_cast<char>('1' + i);
  }
  {
    auto [r, c] = cell(store.Get(starbucks).loc);
    grid[r][c] = 'S';
  }
  {
    auto [r, c] = cell(bob);
    grid[r][c] = 'B';
  }
  std::printf("  +%s+\n", std::string(kSize, '-').c_str());
  for (const std::string& row : grid) {
    std::printf("  |%s|\n", row.c_str());
  }
  std::printf("  +%s+\n", std::string(kSize, '-').c_str());
  std::printf("  B=Bob  S=Starbucks  1..%zu=result  .=cafe  o=other\n\n",
              result.size());
}

}  // namespace

int main() {
  // --- A city of cafes and bars. ---
  ObjectStore city;
  Vocabulary* vocab = city.mutable_vocab();
  const TermId coffee = vocab->Intern("coffee");
  const TermId espresso = vocab->Intern("espresso");
  const TermId bakery = vocab->Intern("bakery");
  const TermId bar = vocab->Intern("bar");
  const TermId cocktails = vocab->Intern("cocktails");

  Rng rng(1501);  // First page of the paper.
  for (int i = 0; i < 400; ++i) {
    KeywordSet doc;
    if (rng.NextBernoulli(0.55)) {
      doc.Insert(coffee);
      if (rng.NextBernoulli(0.4)) doc.Insert(espresso);
      if (rng.NextBernoulli(0.3)) doc.Insert(bakery);
    } else {
      doc.Insert(bar);
      if (rng.NextBernoulli(0.5)) doc.Insert(cocktails);
    }
    city.Add(Point{rng.NextDouble(), rng.NextDouble()}, doc,
             "shop-" + std::to_string(i));
  }
  // Starbucks down the street: close to Bob, but its doc mentions espresso
  // and bakery too, diluting the Jaccard similarity to the query {coffee}.
  const Point bob{0.5, 0.5};
  const ObjectId starbucks =
      city.Add(Point{0.55, 0.53}, KeywordSet({coffee, espresso, bakery}),
               "Starbucks");

  const Corpus corpus = CorpusBuilder().Build(std::move(city));
  const ObjectStore& store = corpus.store();
  WhyNotEngine engine(corpus);

  // --- Bob's top-3 "coffee" query. ---
  Query q;
  q.loc = bob;
  q.doc = KeywordSet({coffee});
  q.k = 3;

  const TopKResult result = engine.TopK(q);
  std::printf("Bob's query: %s\n\n", q.ToString(store.vocab()).c_str());
  RenderMap(store, bob, result, starbucks);
  for (size_t i = 0; i < result.size(); ++i) {
    const SpatialObject& o = store.Get(result[i].id);
    std::printf("  %zu. %-10s score %.4f  keywords: %s\n", i + 1,
                o.name.c_str(), result[i].score,
                o.doc.ToString(store.vocab()).c_str());
  }

  bool in_result = false;
  for (const ScoredObject& so : result) {
    if (so.id == starbucks) in_result = true;
  }
  std::printf("\nStarbucks in the result? %s\n\n", in_result ? "yes" : "no");

  // --- Why not? ---
  WhyNotOptions options;
  options.lambda = 0.5;
  auto answer = engine.Answer(q, {starbucks}, options);
  if (!answer.ok()) {
    std::printf("error: %s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("Explanation:\n  %s\n\n", answer->explanations[0].text.c_str());

  const RefinedPreferenceQuery& pref = *answer->preference;
  std::printf("Preference adjustment (Definition 2):\n");
  std::printf("  original: w=<%.2f,%.2f>, k=%u   (Starbucks ranked %zu)\n",
              q.w.ws, q.w.wt, q.k, pref.original_rank);
  std::printf("  refined : w=<%.4f,%.4f>, k=%u   penalty %.4f "
              "(delta_k=%zu, delta_w=%.4f)\n",
              pref.refined.w.ws, pref.refined.w.wt, pref.refined.k,
              pref.penalty.value, pref.penalty.delta_k, pref.penalty.delta_w);

  const TopKResult refined = engine.TopK(pref.refined);
  std::printf("\nRefined top-%u:\n", pref.refined.k);
  for (size_t i = 0; i < refined.size(); ++i) {
    const SpatialObject& o = store.Get(refined[i].id);
    std::printf("  %zu. %-10s score %.4f%s\n", i + 1, o.name.c_str(),
                refined[i].score,
                refined[i].id == starbucks ? "   <-- revived" : "");
  }
  return 0;
}
