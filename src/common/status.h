// Copyright (c) 2026 The YASK reproduction authors.
// Minimal status / result types used across the library.
//
// The library does not throw exceptions for anticipated failures (bad input
// files, malformed queries, unsatisfiable refinements); those are reported
// through Status / Result<T>. Programming errors are guarded with assertions.

#ifndef YASK_COMMON_STATUS_H_
#define YASK_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace yask {

/// Broad error category, deliberately small (inspired by absl::StatusCode).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kInternal = 5,
  kUnavailable = 6,
  kAlreadyExists = 7,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// An engaged message is only stored for non-OK statuses. `Status::OK()` is
/// the success singleton-by-value; `ok()` is the common fast path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an error code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Success value.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>"; for logs and test failure output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is a Status or a value of type T (a tiny expected<T, Status>).
///
/// Usage:
///   Result<Dataset> r = LoadDataset(path);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_T;` in functions.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK (an OK status carries no T).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ is engaged.
  std::optional<T> value_;
};

}  // namespace yask

#endif  // YASK_COMMON_STATUS_H_
