#include "src/server/result_cache.h"

#include <utility>

namespace yask {

namespace {

size_t EntryCost(const std::string& key, const HttpResponse& resp) {
  // Body dominates; the rest keeps many tiny entries from reading as free.
  return key.size() + resp.body.size() + resp.content_type.size() + 64;
}

}  // namespace

std::optional<HttpResponse> ResultCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.resp;
}

void ResultCache::Put(const std::string& key, const HttpResponse& resp,
                      uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = map_.find(key); it != map_.end()) {
    // Replace in place (a single-flight race can double-Put the same key).
    EraseLocked(it);
  }
  lru_.push_front(key);
  Entry e;
  e.resp = resp;
  e.query_id = query_id;
  e.cost = EntryCost(key, resp);
  e.lru_pos = lru_.begin();
  bytes_ += e.cost;
  map_.emplace(key, std::move(e));
  by_query_.emplace(query_id, key);
  while (!lru_.empty() &&
         ((max_entries_ > 0 && map_.size() > max_entries_) ||
          (max_bytes_ > 0 && bytes_ > max_bytes_))) {
    auto victim = map_.find(lru_.back());
    if (victim == map_.end()) break;  // Unreachable; defensive.
    EraseLocked(victim);
    if (evictions_ != nullptr) evictions_->Add();
  }
}

size_t ResultCache::InvalidateQuery(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  auto range = by_query_.equal_range(query_id);
  // EraseLocked mutates by_query_; collect keys first.
  std::list<std::string> keys;
  for (auto it = range.first; it != range.second; ++it) {
    keys.push_back(it->second);
  }
  for (const std::string& key : keys) {
    auto it = map_.find(key);
    if (it == map_.end()) continue;
    EraseLocked(it);
    ++dropped;
    if (invalidations_ != nullptr) invalidations_->Add();
  }
  return dropped;
}

size_t ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t dropped = map_.size();
  if (invalidations_ != nullptr) {
    for (size_t i = 0; i < dropped; ++i) invalidations_->Add();
  }
  map_.clear();
  lru_.clear();
  by_query_.clear();
  bytes_ = 0;
  return dropped;
}

size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

void ResultCache::EraseLocked(
    std::unordered_map<std::string, Entry>::iterator it) {
  bytes_ -= it->second.cost;
  lru_.erase(it->second.lru_pos);
  auto range = by_query_.equal_range(it->second.query_id);
  for (auto q = range.first; q != range.second; ++q) {
    if (q->second == it->first) {
      by_query_.erase(q);
      break;
    }
  }
  map_.erase(it);
}

SingleFlight::Ticket SingleFlight::Join(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flights_.find(key);
  if (it != flights_.end()) return Ticket{it->second, /*leader=*/false};
  auto flight = std::make_shared<Flight>();
  flights_.emplace(key, flight);
  return Ticket{std::move(flight), /*leader=*/true};
}

void SingleFlight::Finish(const std::string& key, const Ticket& ticket,
                          HttpResponse resp, bool ok) {
  {
    // Retire the key first so a request arriving after the outcome is
    // published starts a fresh flight instead of joining a finished one.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it != flights_.end() && it->second == ticket.flight) {
      flights_.erase(it);
    }
  }
  std::lock_guard<std::mutex> lock(ticket.flight->mu);
  ticket.flight->done = true;
  ticket.flight->ok = ok;
  ticket.flight->resp = std::move(resp);
  ticket.flight->cv.notify_all();
}

std::optional<HttpResponse> SingleFlight::Wait(const Ticket& ticket) {
  std::unique_lock<std::mutex> lock(ticket.flight->mu);
  ticket.flight->cv.wait(lock, [&] { return ticket.flight->done; });
  if (!ticket.flight->ok) return std::nullopt;
  return ticket.flight->resp;
}

}  // namespace yask
