// Copyright (c) 2026 The YASK reproduction authors.
// RemoteCorpus + RemoteTopKClient: the coordinator's owned view of a corpus
// whose shards live in other processes (yask_shard_server) — the remote
// counterpart of ShardedCorpus.
//
// Replica tier: each logical shard is backed by N replicas — yask_shard_server
// processes booted from the SAME per-shard snapshot file — held behind a
// ReplicaSet with health-aware routing. Stateless calls spread round-robin
// across healthy replicas; on any wire failure mid-call the set transparently
// retries the surviving replicas, so a killed process costs a failover, not a
// 503. Each replica carries its own error epoch, consecutive-failure count and
// an exponential cooldown: a flapping replica is routed around until its
// cooldown expires, then probed again (which is how a restarted process
// rejoins the rotation). Only when EVERY replica of a shard fails does the
// error reach the corpus-level epoch below.
//
// Connect() dials every replica of every endpoint group ("host:port|host:port"
// per shard, groups comma-joined by the caller), fetches each replica's meta
// (identity, global bounds + SDist normaliser, local->global id map, index
// availability, SetR root MBR) and the shared vocabulary, checks that the
// replicas of a group agree exactly (same snapshot ⇒ same identity — a
// replica Connect cannot reach joins as "pending" and is checked on first
// contact instead, so a rebooting replica never blocks coordinator boot), and
// cross-checks the shard set exactly like ShardedCorpus::Load checks shard
// files: all shards present exactly once, bounds agreed, global ids tiling
// 0..total-1. After that the coordinator can route by global id, tokenise
// queries with the same term ids the shards use, and pick top-k home shards —
// everything the in-process fan-outs read from their ShardedCorpus, except
// the indexes, which stay behind the wire.
//
// Transport: a small FIXED set of pipelined keep-alive connections per
// replica (PipelinedHttpChannel) — concurrent calls multiplex onto them in
// ticket order instead of checking a connection out of a pool, so a fan-out
// pays no per-call checkout and idle sockets stay warm. Per-call deadlines
// and retry-on-another-channel apply to transport errors only — HTTP error
// statuses are semantic and surface immediately. Server-side session
// state (Eqn. (3) plane sessions, Eqn. (4) probe batches) is replica-sticky;
// its failover — re-establish on a live replica and REPLAY to the same level
// — lives with the sessions in src/corpus/remote_whynot_oracle.cc. Failures
// that exhaust a whole ReplicaSet bump the corpus's error epoch, which
// YaskService samples around each request to turn a mid-algorithm shard
// failure into a clean 503 (the why-not oracle interface has no error
// channel of its own).

#ifndef YASK_CORPUS_REMOTE_CORPUS_H_
#define YASK_CORPUS_REMOTE_CORPUS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/common/vocabulary.h"
#include "src/query/query.h"
#include "src/query/topk_engine.h"
#include "src/server/http_client.h"
#include "src/server/shard_protocol.h"
#include "src/storage/object.h"

namespace yask {

struct RemoteShardOptions {
  int connect_timeout_ms = 2000;
  /// Per-call wall deadline (send + wait + read).
  int call_deadline_ms = 15000;
  /// Extra attempts after a TRANSPORT failure, each on a fresh connection
  /// (covers server-side keep-alive recycling of pooled idle connections).
  int retries = 2;
  /// Worker threads of the coordinator fan-out pool (0 = one per shard).
  /// Unlike the in-process CorpusOptions::fanout_threads (CPU-bound shard
  /// scans), these tasks BLOCK on the wire, so even 1-core hosts get a pool
  /// — without one, every multi-shard round is sequential RPCs and one slow
  /// shard serializes the whole fan-out.
  size_t fanout_threads = 0;
  /// Replica cooldown after a failed call: base * 2^(consecutive failures-1),
  /// capped at max. A cooling replica is skipped by routing while healthy
  /// siblings exist, and probed again once the cooldown expires (how a
  /// restarted replica rejoins). Base 0 disables cooldown.
  int cooldown_base_ms = 200;
  int cooldown_max_ms = 3000;
  /// Pipelined keep-alive connections per replica. Concurrent calls
  /// multiplex onto these; each connection serialises its own responses, so
  /// this is also the replica's server-side concurrency from one
  /// coordinator.
  size_t mux_connections = 4;
};

/// One replica endpoint as the coordinator talks to it: a fixed set of
/// pipelined multiplexed connections plus the retry/deadline policy.
/// Thread-safe; calls from concurrent fan-outs pipeline onto the
/// least-loaded channel.
class RemoteShard {
 public:
  /// `metrics` (must outlive the shard) receives this replica's meters:
  /// requests/errors/retries counters and the per-replica RPC latency
  /// histogram, labeled {replica="host:port"}. /health and /metrics read
  /// the SAME instruments — the registry is the single source of truth.
  /// nullptr (standalone/test use) gives the shard a private registry.
  RemoteShard(std::string host, uint16_t port, RemoteShardOptions options,
              const MetricsRegistry* metrics = nullptr);

  /// One RPC. Returns the response body on HTTP 200; a semantic HTTP error
  /// becomes a Status with the mapped code (404 -> NotFound, 501 ->
  /// FailedPrecondition, else Unavailable) and is NOT retried; transport
  /// errors retry per the options (channels found with a half-closed idle
  /// socket redial for free), then surface as Unavailable and bump this
  /// replica's error epoch.
  Result<std::string> Call(const std::string& method, const std::string& path,
                           std::string_view body);

  /// One best-effort RPC that moves NO meters and NO error epochs: no
  /// requests/errors/retries counts, no latency observation, no rpc span,
  /// no retry. The /trace/<id> stitcher reads shard spans through this —
  /// observing a trace must not perturb the metrics being observed. Rides a
  /// DEDICATED keep-alive channel (warm across trace reads, but never one
  /// of the metered channels: a pipelined channel fails every in-flight
  /// call on any transport error, so a slow trace read sharing a pipe
  /// could fail concurrent metered RPCs and move the meters it observes).
  Result<std::string> CallUnmetered(const std::string& method,
                                    const std::string& path,
                                    std::string_view body, int deadline_ms);

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }
  std::string endpoint() const {
    return host_ + ":" + std::to_string(port_);
  }
  /// Wire requests issued (attempts count one each) — the round-trip meter
  /// bench_remote_shards gates on. Reads the registry counter.
  uint64_t requests() const { return requests_->value(); }
  /// Calls that exhausted every attempt — this replica's failure count.
  uint64_t error_epoch() const { return errors_->value(); }

 private:
  Result<std::string> CallInternal(const std::string& method,
                                   const std::string& path,
                                   std::string_view body);
  /// The least-loaded channel, round-robin tie-broken.
  PipelinedHttpChannel* PickChannel();

  std::string host_;
  uint16_t port_;
  RemoteShardOptions options_;
  /// Engaged only when no shared registry was passed to the constructor.
  std::unique_ptr<MetricsRegistry> own_metrics_;
  // Registry-owned instruments (stable for the registry's lifetime).
  Counter* requests_ = nullptr;
  Counter* errors_ = nullptr;
  Counter* retries_ = nullptr;
  Histogram* latency_ = nullptr;
  /// Fixed at construction (options.mux_connections, min 1); each channel
  /// is itself thread-safe, so calls never contend on shard-wide state.
  std::vector<std::unique_ptr<PipelinedHttpChannel>> channels_;
  /// CallUnmetered's own channel — trace-read failures must stay off the
  /// metered pipelines.
  std::unique_ptr<PipelinedHttpChannel> trace_channel_;
  std::atomic<uint64_t> rr_{0};
};

/// Lazy-connect state of one replica. Connect() validates every replica it
/// can reach; a transport-dead replica joins its set as kPending and is
/// validated on FIRST CONTACT (the meta fetch + identity check deferred from
/// Connect). A replica that answers but mismatches the group identity is
/// kRejected permanently — routing never picks it again, because failing over
/// onto a wrong-snapshot replica would corrupt results, not mask an outage.
enum class ReplicaValidation : uint8_t { kValidated = 0, kPending, kRejected };

/// One logical shard's replicas plus their health state and routing policy.
/// Thread-safe: routing state is atomic, each replica locks its own pool.
class ReplicaSet {
 public:
  /// `metrics` (non-null, outlives the set) receives the shard-level meters
  /// labeled {shard="<index>"}: failover/cooldown counters, the per-shard
  /// RPC latency histogram, and a cooling-replicas gauge computed at scrape
  /// time.
  ReplicaSet(std::vector<std::unique_ptr<RemoteShard>> replicas,
             RemoteShardOptions options, const MetricsRegistry* metrics,
             uint32_t shard_index);

  size_t num_replicas() const { return replicas_.size(); }
  RemoteShard& replica(size_t r) const { return *replicas_[r]; }
  /// "host:port|host:port" — the shard's identity in messages and /health.
  std::string description() const;

  /// One stateless RPC with health-aware routing: starts at the round-robin
  /// cursor, skips replicas in cooldown while a healthy one exists, and on a
  /// wire failure (Unavailable) retries the NEXT replica mid-call — the
  /// caller sees a failover, not an error. Semantic HTTP errors (404, 501)
  /// are answers, not failures, and surface immediately. Errors only after
  /// every replica failed.
  Result<std::string> Call(const std::string& method, const std::string& path,
                           std::string_view body) const;

  /// One RPC pinned to a replica — session traffic, where the server-side
  /// state is replica-sticky and the CALLER owns failover + replay. Health
  /// is still tracked (wire failure -> cooldown).
  Result<std::string> CallOn(size_t r, const std::string& method,
                             const std::string& path,
                             std::string_view body) const;

  /// A replica for new session placement: round-robin, preferring healthy
  /// replicas, never one whose `exclude` bit is set (the caller's
  /// failed-this-operation set). nullopt when every replica is excluded.
  std::optional<size_t> PickReplica(
      const std::vector<bool>* exclude = nullptr) const;

  void MarkFailure(size_t r) const;
  void MarkSuccess(size_t r) const;
  bool InCooldown(size_t r) const;

  // --- Lazy connect (see ReplicaValidation). ---
  /// The identity every replica of this set must present — the group meta
  /// Connect() agreed with the live replicas. Must be set before any replica
  /// is marked pending.
  void SetExpectedIdentity(const shardrpc::ShardMeta& meta);
  /// Flags a replica Connect() could not reach: identity validation is owed
  /// on first contact. Also starts a cooldown so routing prefers the
  /// already-validated siblings until the replica is probed.
  void MarkPendingValidation(size_t r) const;
  ReplicaValidation validation(size_t r) const {
    return static_cast<ReplicaValidation>(
        health_[r]->validation.load(std::memory_order_acquire));
  }
  /// Settles a pending replica: fetches its meta and checks the protocol
  /// range + shard identity against the expected identity. Unavailable =
  /// still unreachable (stays pending); FailedPrecondition = answered with
  /// the WRONG identity or protocol (permanently rejected). Validated and
  /// rejected replicas return their verdict without touching the wire.
  Status EnsureValidated(size_t r) const;
  /// Counted by Call() itself; session channels report theirs here. Bumps
  /// the registry counter /health and /metrics both read.
  void NoteFailover() const { failovers_->Add(); }

  /// Wire requests across all replicas.
  uint64_t requests() const;
  /// Calls (stateless or session) that succeeded only after at least one
  /// replica failed — the "a 503 was avoided" meter. Reads the registry
  /// counter.
  uint64_t failovers() const { return failovers_->value(); }

  /// EWMA (α = 0.2) of this shard's observed per-call RPC latency in ms,
  /// fed by the same observations as yask_shard_rpc_latency_ms; 0.0 until
  /// the first sample. Exposed as the yask_shard_rpc_ewma_ms gauge.
  double rpc_ewma_ms() const {
    return rpc_ewma_ms_->load(std::memory_order_relaxed);
  }
  /// How many Eqn. (3) candidate weights a Step-4 sweep segment should
  /// speculate on against this shard: clamp(8, 256, 8 + 4·ewma_ms). The
  /// slower the wire, the more a saved round-trip is worth relative to
  /// over-fetched counts past the floor cut. Exposed as the
  /// yask_sweep_batch_events gauge.
  size_t adaptive_sweep_batch() const;

 private:
  /// Latency bookkeeping shared by Call/CallOn: the histogram observation
  /// plus the EWMA update (CAS loop — fan-out threads race here).
  void ObserveLatency(double ms) const;
  /// Per-replica health. Heap-allocated so the set stays movable.
  struct Health {
    std::atomic<uint32_t> consecutive_failures{0};
    std::atomic<int64_t> cooldown_until_ms{0};  // Steady-clock millis.
    std::atomic<uint8_t> validation{
        static_cast<uint8_t>(ReplicaValidation::kValidated)};
  };

  std::vector<std::unique_ptr<RemoteShard>> replicas_;
  RemoteShardOptions options_;
  std::vector<std::unique_ptr<Health>> health_;
  /// The agreed group identity pending replicas must match. Heap-allocated
  /// so the set stays movable; null until SetExpectedIdentity.
  std::unique_ptr<shardrpc::ShardMeta> expected_meta_;
  mutable std::atomic<uint64_t> rr_{0};
  // Registry-owned instruments, labeled {shard="<index>"}.
  Counter* failovers_ = nullptr;
  Counter* cooldown_entries_ = nullptr;
  Counter* lazy_validations_ = nullptr;
  Counter* lazy_rejections_ = nullptr;
  Histogram* call_latency_ = nullptr;
  /// Heap-allocated like Health so the set stays movable. 0.0 = no sample.
  std::unique_ptr<std::atomic<double>> rpc_ewma_ms_ =
      std::make_unique<std::atomic<double>>(0.0);
};

/// The coordinator's serving-state view over N remote shards. Construct via
/// Connect(). Logically const while serving; the mutable internals (object
/// cache, connection pools, replica health, error epoch) are thread-safe.
class RemoteCorpus {
 public:
  /// Dials `endpoints` (one entry per shard, any order — shards are indexed
  /// by their manifest identity). Each entry is "host:port" or a replica
  /// group "host:port|host:port|..." of servers booted from the same shard
  /// snapshot. LAZY CONNECT: a dead minority is tolerated — a replica that
  /// cannot be reached joins its set as ReplicaValidation::kPending and has
  /// its identity checked on first contact; a replica that ANSWERS must
  /// agree with its group immediately. A group with zero reachable replicas
  /// still fails fast (its identity is unknowable), as does any shard-set
  /// inconsistency among the live replicas.
  static Result<RemoteCorpus> Connect(const std::vector<std::string>& endpoints,
                                      const RemoteShardOptions& options = {});

  RemoteCorpus(RemoteCorpus&&) = default;
  RemoteCorpus& operator=(RemoteCorpus&&) = default;

  size_t num_shards() const { return shards_.size(); }
  size_t size() const { return shard_of_.size(); }
  const Vocabulary& vocab() const { return *vocab_; }
  const Rect& bounds() const { return bounds_; }
  double dist_norm() const { return dist_norm_; }
  /// Every shard carries its KcR-tree (the /whynot prerequisite).
  bool has_kcr() const { return has_kcr_; }
  /// Shards lacking the KcR-tree (for precise error messages).
  std::vector<uint32_t> shards_without_kcr() const;

  const shardrpc::ShardMeta& meta(size_t shard) const { return metas_[shard]; }
  ReplicaSet& replicas(size_t shard) const { return *shards_[shard]; }
  uint32_t ShardOf(ObjectId global_id) const { return shard_of_[global_id]; }

  /// The object with a global id, fetched over the wire on first use and
  /// cached for the corpus lifetime (objects are immutable). The returned
  /// object's `.id` is the global id. On fetch failure the error epoch bumps
  /// and a static empty object is returned — callers surface the failure via
  /// error_epoch(), exactly like every other mid-algorithm wire error.
  const SpatialObject& Object(ObjectId global_id) const;

  /// Warms the object cache with one batched fetch per owning shard.
  void Prefetch(const std::vector<ObjectId>& global_ids) const;

  /// First object whose name matches, as a global id (one fan-out);
  /// kInvalidObject if none.
  ObjectId FindByName(const std::string& name) const;

  /// The coordinator fan-out pool (null = fan-outs run inline). Shared by
  /// RemoteTopKClient and RemoteShardOracle, one pool per corpus.
  ThreadPool* pool() const { return pool_.get(); }

  /// Runs fn(shard_index) for every shard, on the pool when present.
  void ForEachShard(const std::function<void(size_t)>& fn) const;

  // --- Error channel (see file comment). ---
  uint64_t error_epoch() const { return state_->error_epoch.load(); }
  Status last_error() const;
  void RecordError(const Status& status) const;

  /// Total wire requests across all shards (bench instrumentation).
  uint64_t total_requests() const;
  /// Total successful failovers across all shards — calls and sessions that
  /// survived a replica failure. The bench's "kills stayed invisible" meter.
  /// Sums the per-shard registry counters (single source of truth).
  uint64_t total_failovers() const;

  /// The corpus-side metrics registry: every replica/shard meter above
  /// lives here; the coordinator's GET /metrics appends its render.
  const MetricsRegistry& metrics() const { return *metrics_; }
  /// Session replays (remote why-not sessions re-established and replayed
  /// on a live replica after a kill) — bumped by ShardSessionChannel.
  Counter* session_replays() const { return session_replays_; }

 private:
  RemoteCorpus() = default;

  /// Error state behind a stable allocation so the corpus stays movable.
  struct ErrorState {
    std::atomic<uint64_t> error_epoch{0};
    std::mutex mu;
    Status last;
  };

  // Declared FIRST: shards/replicas hold instrument pointers into the
  // registry, so it must be destroyed last. Behind unique_ptr so pointers
  // survive corpus moves (the ErrorState/ObjectCache pattern).
  std::unique_ptr<MetricsRegistry> metrics_;
  Counter* session_replays_ = nullptr;

  std::vector<std::unique_ptr<ReplicaSet>> shards_;
  std::vector<shardrpc::ShardMeta> metas_;
  std::unique_ptr<Vocabulary> vocab_;
  Rect bounds_ = Rect::Empty();
  double dist_norm_ = 0.0;
  bool has_kcr_ = false;
  std::vector<uint32_t> shard_of_;  // Global id -> shard index.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ErrorState> state_ = std::make_unique<ErrorState>();

  struct ObjectCache {
    std::mutex mu;
    // unique_ptr values: Object() hands out stable references.
    std::unordered_map<ObjectId, std::unique_ptr<SpatialObject>> map;
  };
  std::unique_ptr<ObjectCache> cache_ = std::make_unique<ObjectCache>();
};

/// Threshold-broadcast fan-out top-k over remote shards — the wire twin of
/// ShardedTopKEngine, merging bit-identically: home shard (nearest SetR root
/// MBR) first, its k-th score broadcast as the prune threshold, per-shard
/// rows re-sorted under the global ScoredObject order.
class RemoteTopKClient {
 public:
  explicit RemoteTopKClient(const RemoteCorpus& corpus) : corpus_(&corpus) {}

  /// Exact top-k with global ids. On a wire failure (every replica of a
  /// shard down) the corpus error epoch bumps and the failed shard
  /// contributes nothing — callers surface the epoch, never the partial
  /// result.
  TopKResult Query(const Query& query, TopKStats* stats = nullptr) const;

 private:
  const RemoteCorpus* corpus_;
};

}  // namespace yask

#endif  // YASK_CORPUS_REMOTE_CORPUS_H_
