#include "src/whynot/penalty.h"

#include <algorithm>
#include <cmath>

namespace yask {

double DeltaKTerm(double lambda, uint32_t k, size_t original_rank,
                  size_t refined_rank) {
  const size_t delta_k =
      refined_rank > k ? refined_rank - k : 0;
  if (delta_k == 0) return 0.0;
  const double norm = static_cast<double>(original_rank) - k;
  if (norm <= 0.0) return 0.0;  // Degenerate: M already inside the top-k.
  return lambda * static_cast<double>(delta_k) / norm;
}

PenaltyBreakdown PreferencePenalty(double lambda, const Query& original,
                                   const Weights& refined_w,
                                   size_t original_rank, size_t refined_rank) {
  PenaltyBreakdown out;
  out.delta_k =
      refined_rank > original.k ? refined_rank - original.k : 0;
  out.delta_w = original.w.DistanceTo(refined_w);
  out.k_term = DeltaKTerm(lambda, original.k, original_rank, refined_rank);
  out.mod_term =
      (1.0 - lambda) * out.delta_w / original.w.PenaltyNormalizer();
  out.value = out.k_term + out.mod_term;
  return out;
}

PenaltyBreakdown KeywordPenalty(double lambda, const Query& original,
                                size_t delta_doc, size_t doc_norm,
                                size_t original_rank, size_t refined_rank) {
  PenaltyBreakdown out;
  out.delta_k =
      refined_rank > original.k ? refined_rank - original.k : 0;
  out.delta_doc = delta_doc;
  out.k_term = DeltaKTerm(lambda, original.k, original_rank, refined_rank);
  out.mod_term =
      doc_norm == 0
          ? 0.0
          : (1.0 - lambda) * static_cast<double>(delta_doc) / doc_norm;
  out.value = out.k_term + out.mod_term;
  return out;
}

}  // namespace yask
