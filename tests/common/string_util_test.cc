#include "src/common/string_util.h"

#include <gtest/gtest.h>

namespace yask {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim(" \t\r\n "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ToLowerAsciiTest, Lowers) {
  EXPECT_EQ(ToLowerAscii("HeLLo-123"), "hello-123");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("content-length: 5", "content-length"));
  EXPECT_FALSE(StartsWith("abc", "abcd"));
  EXPECT_TRUE(EndsWith("file.tsv", ".tsv"));
  EXPECT_FALSE(EndsWith("tsv", "file.tsv"));
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("  -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("3.25x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(ParseUint64Test, ValidAndInvalid) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("42", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(ParseUint64(" 7 ", &v));
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("99999999999999999999999", &v));  // Overflow.
}

}  // namespace
}  // namespace yask
